#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "data/synthetic.h"
#include "fl/algorithm.h"
#include "fl/client.h"
#include "fl/fedavg.h"
#include "fl/fednova.h"
#include "fl/fedprox.h"
#include "fl/metrics.h"
#include "fl/sampling.h"
#include "fl/scaffold.h"
#include "fl/server.h"
#include "nn/models/factory.h"

namespace niid {
namespace {

// Small, well-separated two-class tabular problem.
Dataset EasyDataset(int64_t n, uint64_t seed, float sep = 3.0f) {
  SyntheticTabularConfig config;
  config.num_features = 10;
  config.train_size = n;
  config.test_size = 1;
  config.class_sep = sep;
  config.seed = seed;
  return MakeSyntheticTabular(config).train;
}

ModelSpec MlpSpec() {
  ModelSpec spec;
  spec.name = "mlp";
  spec.input_features = 10;
  spec.num_classes = 2;
  return spec;
}

LocalTrainOptions FastOptions() {
  LocalTrainOptions options;
  options.local_epochs = 2;
  options.batch_size = 16;
  options.learning_rate = 0.05f;
  return options;
}

// All clients share ONE underlying distribution (fixed generator seed) and
// differ only in which shard they hold — otherwise averaging would be asked
// to reconcile contradictory tasks.
std::unique_ptr<Client> MakeClient(int id, uint64_t seed) {
  Dataset full = EasyDataset(256, /*seed=*/4242);
  std::vector<int64_t> shard;
  for (int64_t k = 0; k < 64; ++k) {
    shard.push_back((static_cast<int64_t>(id) * 64 + k) % full.size());
  }
  return std::make_unique<Client>(id, Subset(full, shard), Rng(seed));
}

// One shared workspace is enough for these serial tests: Train fully reloads
// model and optimizer state on every call.
TrainContext& TestContext() {
  static TrainContext ctx(MakeModelFactory(MlpSpec()));
  return ctx;
}

StateVector GlobalInit(uint64_t seed = 7) {
  Rng rng(seed);
  auto model = MakeModelFactory(MlpSpec())(rng);
  return FlattenState(*model);
}

// ---------------------------------------------------------------- client

TEST(ClientTest, TauCountsBatches) {
  auto client = MakeClient(0, 1);
  LocalTrainOptions options = FastOptions();
  options.local_epochs = 3;
  options.batch_size = 10;  // 64 samples -> 7 batches per epoch
  const LocalUpdate update = client->Train(TestContext(), GlobalInit(), options);
  EXPECT_EQ(update.tau, 3 * 7);
  EXPECT_EQ(update.num_samples, 64);
  EXPECT_EQ(update.client_id, 0);
  EXPECT_TRUE(update.delta_c.empty());
}

TEST(ClientTest, DeltaIsGlobalMinusLocal) {
  auto client = MakeClient(0, 2);
  TrainContext& ctx = TestContext();
  const StateVector global = GlobalInit();
  const LocalUpdate update = client->Train(ctx, global, FastOptions());
  const StateVector local = FlattenState(*ctx.model);
  ASSERT_EQ(update.delta.size(), global.size());
  for (size_t i = 0; i < global.size(); ++i) {
    EXPECT_FLOAT_EQ(update.delta[i], global[i] - local[i]);
  }
}

TEST(ClientTest, TrainingReducesLoss) {
  auto client = MakeClient(0, 3);
  const StateVector global = GlobalInit();
  LocalTrainOptions options = FastOptions();
  options.local_epochs = 1;
  const LocalUpdate first = client->Train(TestContext(), global, options);
  options.local_epochs = 8;
  const LocalUpdate second = client->Train(TestContext(), global, options);
  EXPECT_LT(second.average_loss, first.average_loss);
}

TEST(ClientTest, GradHookIsInvokedEveryStep) {
  auto client = MakeClient(0, 4);
  int calls = 0;
  Client::GradHook hook = [&calls](Module&) { ++calls; };
  const LocalUpdate update =
      client->Train(TestContext(), GlobalInit(), FastOptions(), hook);
  EXPECT_EQ(calls, update.tau);
}

TEST(ClientTest, FullBatchGradientMatchesManualAccumulation) {
  auto client = MakeClient(0, 5);
  const StateVector global = GlobalInit();
  // Gradient should be identical for different batch sizes.
  StateVector g16, g64;
  client->FullBatchGradientInto(TestContext(), global, 16, g16);
  client->FullBatchGradientInto(TestContext(), global, 64, g64);
  ASSERT_EQ(g16.size(), g64.size());
  double diff = 0, norm = 0;
  for (size_t i = 0; i < g16.size(); ++i) {
    diff += std::abs(g16[i] - g64[i]);
    norm += std::abs(g64[i]);
  }
  EXPECT_LT(diff, 1e-3 * std::max(norm, 1.0));
}

// ---------------------------------------------------------------- fedavg

LocalUpdate FakeUpdate(int id, int64_t samples, float delta_value,
                       int64_t tau, size_t dim) {
  LocalUpdate update;
  update.client_id = id;
  update.num_samples = samples;
  update.delta.assign(dim, delta_value);
  update.tau = tau;
  return update;
}

std::vector<StateSegment> TrivialLayout(int64_t dim) {
  return {{0, dim, true}};
}

TEST(FedAvgTest, WeightedAverageHandComputed) {
  AlgorithmConfig config;
  FedAvg fedavg(config);
  StateVector global(4, 10.f);
  // Two clients: 100 samples with delta 1, 300 samples with delta -1.
  // Weighted delta = 0.25*1 + 0.75*(-1) = -0.5 => global 10.5.
  std::vector<LocalUpdate> updates = {FakeUpdate(0, 100, 1.f, 5, 4),
                                      FakeUpdate(1, 300, -1.f, 5, 4)};
  fedavg.Aggregate(global, updates, TrivialLayout(4));
  for (float v : global) EXPECT_FLOAT_EQ(v, 10.5f);
}

TEST(FedAvgTest, ServerLrScalesStep) {
  AlgorithmConfig config;
  config.server_lr = 0.5f;
  FedAvg fedavg(config);
  StateVector global(2, 0.f);
  std::vector<LocalUpdate> updates = {FakeUpdate(0, 10, 2.f, 1, 2)};
  fedavg.Aggregate(global, updates, TrivialLayout(2));
  for (float v : global) EXPECT_FLOAT_EQ(v, -1.f);
}

TEST(FedAvgTest, BufferSegmentsSkippedWhenDisabled) {
  AlgorithmConfig config;
  config.average_bn_buffers = false;
  FedAvg fedavg(config);
  StateVector global = {0.f, 0.f, 0.f, 0.f};
  const std::vector<StateSegment> layout = {{0, 2, true}, {2, 2, false}};
  std::vector<LocalUpdate> updates = {FakeUpdate(0, 10, 1.f, 1, 4)};
  fedavg.Aggregate(global, updates, layout);
  EXPECT_FLOAT_EQ(global[0], -1.f);
  EXPECT_FLOAT_EQ(global[1], -1.f);
  EXPECT_FLOAT_EQ(global[2], 0.f);  // untouched buffer
  EXPECT_FLOAT_EQ(global[3], 0.f);
}

TEST(FedAvgTest, EmptyRoundIsNoOp) {
  AlgorithmConfig config;
  FedAvg fedavg(config);
  StateVector global(3, 1.f);
  fedavg.Aggregate(global, {}, TrivialLayout(3));
  for (float v : global) EXPECT_FLOAT_EQ(v, 1.f);
}

// ---------------------------------------------------------------- fedprox

TEST(FedProxTest, MuZeroMatchesFedAvgBitwise) {
  const StateVector global = GlobalInit();
  AlgorithmConfig prox_config;
  prox_config.fedprox_mu = 0.f;
  FedProx fedprox(prox_config);
  FedAvg fedavg(AlgorithmConfig{});
  auto client_a = MakeClient(0, 6);
  auto client_b = MakeClient(0, 6);  // identical twin
  const LocalUpdate a =
      fedprox.RunClient(*client_a, TestContext(), global, FastOptions());
  const LocalUpdate b =
      fedavg.RunClient(*client_b, TestContext(), global, FastOptions());
  EXPECT_EQ(a.delta, b.delta);
}

TEST(FedProxTest, LargerMuShrinksLocalUpdate) {
  const StateVector global = GlobalInit();
  auto norm_for_mu = [&](float mu) {
    AlgorithmConfig config;
    config.fedprox_mu = mu;
    FedProx fedprox(config);
    auto client = MakeClient(0, 7);
    LocalTrainOptions options = FastOptions();
    options.local_epochs = 5;
    const LocalUpdate update =
        fedprox.RunClient(*client, TestContext(), global, options);
    return Norm(update.delta);
  };
  const double n0 = norm_for_mu(0.f);
  const double n1 = norm_for_mu(1.f);
  const double n10 = norm_for_mu(10.f);
  EXPECT_GT(n0, n1);
  EXPECT_GT(n1, n10);
}

// ---------------------------------------------------------------- fednova

TEST(FedNovaTest, NormalizedAveragingHandComputed) {
  AlgorithmConfig config;
  FedNova fednova(config);
  StateVector global(2, 0.f);
  // Client 0: n=100, tau=10, delta=1. Client 1: n=100, tau=2, delta=0.4.
  // tau_eff = 0.5*10 + 0.5*2 = 6.
  // update = 6 * (0.5 * 1/10 + 0.5 * 0.4/2) = 6 * (0.05 + 0.1) = 0.9.
  std::vector<LocalUpdate> updates = {FakeUpdate(0, 100, 1.f, 10, 2),
                                      FakeUpdate(1, 100, 0.4f, 2, 2)};
  fednova.Aggregate(global, updates, TrivialLayout(2));
  for (float v : global) EXPECT_NEAR(v, -0.9f, 1e-6f);
}

TEST(FedNovaTest, EqualStepsReduceToFedAvg) {
  // When every client runs the same tau, FedNova == FedAvg.
  StateVector nova_global(3, 1.f), avg_global(3, 1.f);
  std::vector<LocalUpdate> updates = {FakeUpdate(0, 50, 0.2f, 4, 3),
                                      FakeUpdate(1, 150, -0.6f, 4, 3)};
  FedNova(AlgorithmConfig{}).Aggregate(nova_global, updates,
                                       TrivialLayout(3));
  FedAvg(AlgorithmConfig{}).Aggregate(avg_global, updates, TrivialLayout(3));
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(nova_global[i], avg_global[i], 1e-6f);
  }
}

TEST(FedNovaTest, HeterogeneousStepsDebiased) {
  // A client with 10x more steps must NOT dominate 10x more than its
  // normalized share. With FedAvg it would.
  StateVector nova_global(1, 0.f), avg_global(1, 0.f);
  std::vector<LocalUpdate> updates = {FakeUpdate(0, 100, 10.f, 100, 1),
                                      FakeUpdate(1, 100, 0.1f, 1, 1)};
  FedNova(AlgorithmConfig{}).Aggregate(nova_global, updates,
                                       TrivialLayout(1));
  FedAvg(AlgorithmConfig{}).Aggregate(avg_global, updates, TrivialLayout(1));
  // FedAvg: -(0.5*10 + 0.5*0.1) = -5.05.
  EXPECT_NEAR(avg_global[0], -5.05f, 1e-5f);
  // FedNova: tau_eff = 50.5; per-step deltas are both 0.1 =>
  // update = 50.5 * (0.5*0.1 + 0.5*0.1) = 5.05... equal per-step progress
  // is preserved, but the fast client no longer dominates (both contribute
  // the same normalized direction).
  EXPECT_NEAR(nova_global[0], -5.05f, 1e-4f);
  // Now make the fast client's *per-step* progress tiny: delta 1 over 100
  // steps (0.01/step) vs 0.1 over 1 step. FedNova weighs directions by
  // per-step progress.
  StateVector nova2(1, 0.f);
  std::vector<LocalUpdate> updates2 = {FakeUpdate(0, 100, 1.f, 100, 1),
                                       FakeUpdate(1, 100, 0.1f, 1, 1)};
  FedNova(AlgorithmConfig{}).Aggregate(nova2, updates2, TrivialLayout(1));
  // tau_eff = 50.5, update = 50.5 * (0.5*0.01 + 0.5*0.1) = 2.77...
  EXPECT_NEAR(nova2[0], -2.7775f, 1e-3f);
}

// ---------------------------------------------------------------- scaffold

TEST(ScaffoldTest, InitializeZerosControls) {
  Scaffold scaffold(AlgorithmConfig{});
  scaffold.Initialize(4, 10);
  EXPECT_EQ(scaffold.server_control().size(), 10u);
  for (float v : scaffold.server_control()) EXPECT_EQ(v, 0.f);
  for (float v : scaffold.client_control(3)) EXPECT_EQ(v, 0.f);
}

TEST(ScaffoldTest, CommunicationDoubles) {
  Scaffold scaffold(AlgorithmConfig{});
  FedAvg fedavg(AlgorithmConfig{});
  EXPECT_EQ(scaffold.UploadFloatsPerClient(100), 200);
  EXPECT_EQ(fedavg.UploadFloatsPerClient(100), 100);
}

TEST(ScaffoldTest, OptionTwoControlUpdateFormula) {
  // With zero initial controls, c_i* = delta / (tau * eta_eff) on trainable
  // coordinates (eta_eff = eta / (1 - momentum), see scaffold.cc), and
  // Delta c = c_i*.
  AlgorithmConfig config;
  config.scaffold_variant = 2;
  Scaffold scaffold(config);
  auto client = MakeClient(0, 8);
  const StateVector global = GlobalInit();
  scaffold.Initialize(1, static_cast<int64_t>(global.size()));
  LocalTrainOptions options = FastOptions();
  const LocalUpdate update =
      scaffold.RunClient(*client, TestContext(), global, options);
  ASSERT_EQ(update.delta_c.size(), global.size());
  const float eta_eff = options.learning_rate / (1.f - options.momentum);
  const float scale = 1.f / (static_cast<float>(update.tau) * eta_eff);
  for (size_t i = 0; i < global.size(); ++i) {
    EXPECT_NEAR(update.delta_c[i], scale * update.delta[i], 1e-4f)
        << "coordinate " << i;
  }
}

TEST(ScaffoldTest, ServerControlUpdateUsesTotalClients) {
  AlgorithmConfig config;
  Scaffold scaffold(config);
  scaffold.Initialize(10, 3);  // N = 10
  StateVector global(3, 0.f);
  LocalUpdate update = FakeUpdate(0, 10, 0.f, 1, 3);
  update.delta_c = {1.f, 2.f, 3.f};
  scaffold.Aggregate(global, {update}, TrivialLayout(3));
  EXPECT_FLOAT_EQ(scaffold.server_control()[0], 0.1f);
  EXPECT_FLOAT_EQ(scaffold.server_control()[1], 0.2f);
  EXPECT_FLOAT_EQ(scaffold.server_control()[2], 0.3f);
}

TEST(ScaffoldTest, OptionOneUsesFullBatchGradient) {
  AlgorithmConfig config;
  config.scaffold_variant = 1;
  Scaffold scaffold(config);
  auto client = MakeClient(0, 9);
  const StateVector global = GlobalInit();
  scaffold.Initialize(1, static_cast<int64_t>(global.size()));
  const LocalUpdate update =
      scaffold.RunClient(*client, TestContext(), global, FastOptions());
  // Delta c = c_i* - 0 = full-batch gradient at w^t: nonzero.
  EXPECT_GT(Norm(update.delta_c), 0.0);
  // And the client's stored control matches.
  const StateVector& c = scaffold.client_control(0);
  EXPECT_EQ(c, update.delta_c);
}

// ---------------------------------------------------------------- factory

TEST(AlgorithmFactoryTest, CreatesAllFour) {
  for (const std::string& name : AlgorithmNames()) {
    auto algorithm = CreateAlgorithm(name, AlgorithmConfig{});
    ASSERT_TRUE(algorithm.ok()) << name;
    EXPECT_EQ((*algorithm)->name(), name);
  }
  EXPECT_FALSE(CreateAlgorithm("fedsgd", AlgorithmConfig{}).ok());
}

TEST(AlgorithmFactoryTest, PaperOrder) {
  EXPECT_EQ(AlgorithmNames(),
            (std::vector<std::string>{"fedavg", "fedprox", "scaffold",
                                      "fednova"}));
}

// ---------------------------------------------------------------- sampling

TEST(SamplingTest, FullParticipationReturnsEveryone) {
  Rng rng(10);
  const auto parties = SampleParties(rng, 10, 1.0);
  EXPECT_EQ(parties.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(parties[i], i);
}

TEST(SamplingTest, FractionSamplesCorrectCount) {
  Rng rng(11);
  const auto parties = SampleParties(rng, 100, 0.1);
  EXPECT_EQ(parties.size(), 10u);
  std::set<int> distinct(parties.begin(), parties.end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(SamplingTest, AtLeastOneParty) {
  Rng rng(12);
  EXPECT_EQ(SampleParties(rng, 10, 0.01).size(), 1u);
}

TEST(SamplingTest, CoverageOverManyRounds) {
  Rng rng(13);
  std::set<int> seen;
  for (int round = 0; round < 200; ++round) {
    for (int p : SampleParties(rng, 20, 0.1)) seen.insert(p);
  }
  EXPECT_EQ(seen.size(), 20u);  // every party eventually sampled
}

// ---------------------------------------------------------------- metrics

TEST(MetricsTest, PerfectModelScoresOne) {
  // Train a model to saturation, then evaluate on the training data.
  auto client = MakeClient(0, 14);
  TrainContext& ctx = TestContext();
  LocalTrainOptions options = FastOptions();
  options.local_epochs = 30;
  client->Train(ctx, GlobalInit(), options);
  const EvalResult result = Evaluate(*ctx.model, client->data());
  EXPECT_GT(result.accuracy, 0.95);
  EXPECT_LT(result.loss, 0.3);
  EXPECT_EQ(result.num_samples, 64);
}

TEST(MetricsTest, RestoresTrainingMode) {
  auto client = MakeClient(0, 15);
  Module& model = *TestContext().model;
  model.SetTraining(true);
  Evaluate(model, client->data());
  EXPECT_TRUE(model.training());
  model.SetTraining(false);
  Evaluate(model, client->data());
  EXPECT_FALSE(model.training());
}

// ---------------------------------------------------------------- server

std::unique_ptr<FederatedServer> MakeServer(
    const std::string& algorithm_name, int num_clients = 4,
    double fraction = 1.0, int threads = 1) {
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < num_clients; ++i) {
    clients.push_back(MakeClient(i, 100 + i));
  }
  auto algorithm = CreateAlgorithm(algorithm_name, AlgorithmConfig{});
  ServerConfig config;
  config.sample_fraction = fraction;
  config.seed = 5;
  config.num_threads = threads;
  return std::make_unique<FederatedServer>(MakeModelFactory(MlpSpec()),
                                           std::move(clients),
                                           std::move(*algorithm), config);
}

TEST(ServerTest, RoundImprovesAccuracy) {
  auto server = MakeServer("fedavg");
  // Same generator seed as the clients' shards: same distribution.
  const Dataset test = EasyDataset(200, 4242);
  const double before = server->EvaluateGlobal(test).accuracy;
  for (int round = 0; round < 8; ++round) server->RunRound(FastOptions());
  const double after = server->EvaluateGlobal(test).accuracy;
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.9);
  EXPECT_EQ(server->rounds_completed(), 8);
}

TEST(ServerTest, CommunicationAccounting) {
  auto server = MakeServer("fedavg", 4);
  const int64_t state_size =
      static_cast<int64_t>(server->global_state().size());
  server->RunRound(FastOptions());
  EXPECT_EQ(server->cumulative_upload_floats(), 4 * state_size);
  server->RunRound(FastOptions());
  EXPECT_EQ(server->cumulative_upload_floats(), 8 * state_size);
}

TEST(ServerTest, ScaffoldAccountingDoubles) {
  auto server = MakeServer("scaffold", 2);
  const int64_t state_size =
      static_cast<int64_t>(server->global_state().size());
  server->RunRound(FastOptions());
  EXPECT_EQ(server->cumulative_upload_floats(), 2 * 2 * state_size);
}

TEST(ServerTest, PartialParticipationSamplesSubset) {
  auto server = MakeServer("fedavg", 10, 0.3);
  const RoundStats stats = server->RunRound(FastOptions());
  EXPECT_EQ(stats.sampled_clients.size(), 3u);
}

TEST(ServerTest, ThreadedMatchesSerial) {
  auto serial = MakeServer("fedavg", 4, 1.0, /*threads=*/1);
  auto threaded = MakeServer("fedavg", 4, 1.0, /*threads=*/3);
  for (int round = 0; round < 3; ++round) {
    serial->RunRound(FastOptions());
    threaded->RunRound(FastOptions());
  }
  EXPECT_EQ(serial->global_state(), threaded->global_state());
}

TEST(ServerTest, SetGlobalStateRoundTrips) {
  auto server = MakeServer("fedavg", 2);
  StateVector state = server->global_state();
  state[0] += 1.f;
  server->set_global_state(state);
  EXPECT_EQ(server->global_state()[0], state[0]);
}


TEST(ServerTest, ScaffoldThreadedMatchesSerial) {
  // SCAFFOLD carries per-client server-side state; parallel client training
  // must not perturb it.
  auto serial = MakeServer("scaffold", 4, 1.0, /*threads=*/1);
  auto threaded = MakeServer("scaffold", 4, 1.0, /*threads=*/3);
  for (int round = 0; round < 3; ++round) {
    serial->RunRound(FastOptions());
    threaded->RunRound(FastOptions());
  }
  EXPECT_EQ(serial->global_state(), threaded->global_state());
}

TEST(ServerTest, HeterogeneousEpochsProduceDifferentTaus) {
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < 6; ++i) clients.push_back(MakeClient(i, 300 + i));
  auto algorithm = CreateAlgorithm("fednova", AlgorithmConfig{});
  ServerConfig config;
  config.seed = 9;
  config.min_local_epochs = 1;
  FederatedServer server(MakeModelFactory(MlpSpec()), std::move(clients),
                         std::move(*algorithm), config);
  LocalTrainOptions options = FastOptions();
  options.local_epochs = 8;
  // All clients hold 64 samples and batch 16 -> tau = 4 * E_i; with E_i
  // drawn from U{1..8} six clients almost surely disagree. We can observe
  // this indirectly: FedNova still aggregates correctly (finite state).
  server.RunRound(options);
  for (float v : server.global_state()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}


TEST(SkewAwareSamplingTest, FullParticipationReturnsEveryone) {
  Rng rng(40);
  const std::vector<std::vector<int64_t>> histograms = {
      {10, 0}, {0, 10}, {5, 5}};
  const auto parties = SamplePartiesSkewAware(rng, histograms, 1.0);
  EXPECT_EQ(parties, (std::vector<int>{0, 1, 2}));
}

TEST(SkewAwareSamplingTest, PairsComplementaryLabelParties) {
  // Parties 0..4 hold only class 0, parties 5..9 only class 1. Sampling
  // 2 of 10 must always pick one from each camp — the pooled distribution
  // then exactly matches the global 50/50.
  std::vector<std::vector<int64_t>> histograms;
  for (int i = 0; i < 5; ++i) histograms.push_back({20, 0});
  for (int i = 0; i < 5; ++i) histograms.push_back({0, 20});
  Rng rng(41);
  for (int round = 0; round < 30; ++round) {
    const auto parties = SamplePartiesSkewAware(rng, histograms, 0.2);
    ASSERT_EQ(parties.size(), 2u);
    const bool first_camp0 = parties[0] < 5;
    const bool second_camp0 = parties[1] < 5;
    EXPECT_NE(first_camp0, second_camp0)
        << "picked " << parties[0] << "," << parties[1];
  }
}

TEST(SkewAwareSamplingTest, RotatesCoverage) {
  std::vector<std::vector<int64_t>> histograms(10, {10, 10});
  Rng rng(42);
  std::set<int> seen;
  for (int round = 0; round < 100; ++round) {
    for (int p : SamplePartiesSkewAware(rng, histograms, 0.2)) seen.insert(p);
  }
  EXPECT_EQ(seen.size(), 10u);  // uniform-seeded greedy still covers all
}

TEST(SkewAwareSamplingTest, ServerIntegrationReducesPoolSkew) {
  // Label-skewed shards (#C=1-like): each of 8 clients holds one class.
  // With skew-aware sampling at fraction 0.25 the sampled pool of every
  // round must contain both classes.
  std::vector<std::unique_ptr<Client>> clients;
  Dataset full = EasyDataset(256, 4242);
  for (int i = 0; i < 8; ++i) {
    std::vector<int64_t> shard;
    for (int64_t j = 0; j < full.size() && shard.size() < 24; ++j) {
      if (full.labels[j] == i % 2) {
        if ((j % 4) == static_cast<int64_t>(i) / 2) shard.push_back(j);
      }
    }
    if (shard.empty()) shard.push_back(i);  // safety: never empty
    clients.push_back(
        std::make_unique<Client>(i, Subset(full, shard), Rng(50 + i)));
  }
  auto algorithm = CreateAlgorithm("fedavg", AlgorithmConfig{});
  ServerConfig config;
  config.seed = 5;
  config.sample_fraction = 0.25;
  config.skew_aware_sampling = true;
  FederatedServer server(MakeModelFactory(MlpSpec()), std::move(clients),
                         std::move(*algorithm), config);
  for (int round = 0; round < 10; ++round) {
    const RoundStats stats = server.RunRound(FastOptions());
    ASSERT_EQ(stats.sampled_clients.size(), 2u);
    // One even-id (class 0) and one odd-id (class 1) client.
    EXPECT_NE(stats.sampled_clients[0] % 2, stats.sampled_clients[1] % 2);
  }
}

}  // namespace
}  // namespace niid
