// Bitwise-equality tests for the blocked/packed GEMM engine (tensor/gemm.h).
//
// The engine's contract is stronger than "numerically close": every output
// element is produced by one std::fma per k in strictly increasing k order,
// exactly like the scalar Matmul*Reference oracles, so blocked/vectorised/
// threaded execution must match them BIT FOR BIT. These tests enforce that
// contract over a shape grid chosen to hit every packing edge case, plus
// thread-count invariance of the layers and a small end-to-end training run.
//
// All suites are prefixed "Gemm" so CI can select them with ctest -R '^Gemm'.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <tuple>
#include <vector>

#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/models/factory.h"
#include "nn/optimizer.h"
#include "nn/parameters.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace niid {
namespace {

Tensor RandomTensor(std::vector<int64_t> shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Uniform(std::move(shape), rng, -1.f, 1.f);
}

::testing::AssertionResult BitwiseEqual(const Tensor& actual,
                                        const Tensor& expected) {
  if (actual.shape() != expected.shape()) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  const float* pa = actual.data();
  const float* pe = expected.data();
  for (int64_t i = 0; i < actual.numel(); ++i) {
    if (std::memcmp(&pa[i], &pe[i], sizeof(float)) != 0) {
      return ::testing::AssertionFailure()
             << "first mismatch at flat index " << i << ": " << pa[i]
             << " vs " << pe[i];
    }
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// Engine vs scalar reference over a shape grid.
// ---------------------------------------------------------------------------

// (m, k, n) grid: degenerate dims, sizes below one register tile, sizes that
// are not multiples of MR/NR/Mc/Kc, and k spans that cross one or two Kc
// boundaries (exercising the load-C FMA-chain continuation).
class GemmShapeGrid
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {
};

TEST_P(GemmShapeGrid, MatchesReferenceBitwise) {
  const auto [m, k, n] = GetParam();
  ThreadPool pool(3);
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    Tensor out, ref;

    Tensor a = RandomTensor({m, k}, 1000 + m);
    Tensor b = RandomTensor({k, n}, 2000 + n);
    Matmul(a, b, out, p);
    MatmulReference(a, b, ref);
    EXPECT_TRUE(BitwiseEqual(out, ref)) << "Matmul " << m << "x" << k << "x"
                                        << n << " pool=" << (p != nullptr);

    Tensor at = RandomTensor({k, m}, 3000 + k);
    MatmulTransA(at, b, out, p);
    MatmulTransAReference(at, b, ref);
    EXPECT_TRUE(BitwiseEqual(out, ref))
        << "MatmulTransA " << m << "x" << k << "x" << n;

    Tensor bt = RandomTensor({n, k}, 4000 + k);
    MatmulTransB(a, bt, out, p);
    MatmulTransBReference(a, bt, ref);
    EXPECT_TRUE(BitwiseEqual(out, ref))
        << "MatmulTransB " << m << "x" << k << "x" << n;
  }
}

// Instantiation named "Gemm" so the full ctest id keeps the ^Gemm prefix CI
// filters on.
INSTANTIATE_TEST_SUITE_P(
    Gemm, GemmShapeGrid,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 1),
                      std::make_tuple(5, 1, 9), std::make_tuple(1, 64, 33),
                      std::make_tuple(64, 1, 64), std::make_tuple(3, 5, 2),
                      std::make_tuple(6, 16, 16), std::make_tuple(8, 8, 24),
                      std::make_tuple(97, 63, 41),
                      std::make_tuple(129, 255, 130),
                      std::make_tuple(33, 300, 17),
                      std::make_tuple(7, 513, 5),
                      std::make_tuple(100, 256, 96)));

// ---------------------------------------------------------------------------
// Direct engine calls: accumulate mode and strided operand views.
// ---------------------------------------------------------------------------

TEST(GemmDirect, AccumulateContinuesTheFmaChain) {
  const int64_t m = 50, k = 70, n = 30;
  Tensor a = RandomTensor({m, k}, 11);
  Tensor b = RandomTensor({k, n}, 12);
  Tensor c = RandomTensor({m, n}, 13);
  Tensor expected = c;
  float* pe = expected.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = pe[i * n + j];
      for (int64_t kk = 0; kk < k; ++kk) {
        acc = std::fma(a.data()[i * k + kk], b.data()[kk * n + j], acc);
      }
      pe[i * n + j] = acc;
    }
  }
  Gemm(m, n, k, {a.data(), k, false}, {b.data(), n, false}, c.data(), n,
       /*accumulate=*/true, /*pool=*/nullptr);
  EXPECT_TRUE(BitwiseEqual(c, expected));
}

TEST(GemmDirect, StridedViewsAddressSubmatrices)  {
  // op(A): 20x30 submatrix of a 40x50 buffer; op(B): 30x25 submatrix of a
  // 35x60 buffer; C: 20x25 written into a 20x40 buffer (ldc > n).
  const int64_t m = 20, k = 30, n = 25;
  Tensor abuf = RandomTensor({40, 50}, 21);
  Tensor bbuf = RandomTensor({35, 60}, 22);
  Tensor cbuf({20, 40});
  cbuf.Fill(-7.f);
  Gemm(m, n, k, {abuf.data(), 50, false}, {bbuf.data(), 60, false},
       cbuf.data(), 40, /*accumulate=*/false, /*pool=*/nullptr);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc = std::fma(abuf.data()[i * 50 + kk], bbuf.data()[kk * 60 + j],
                       acc);
      }
      ASSERT_EQ(cbuf.data()[i * 40 + j], acc) << i << "," << j;
    }
    // Tail of each C row (beyond n) must be untouched.
    for (int64_t j = n; j < 40; ++j) {
      ASSERT_EQ(cbuf.data()[i * 40 + j], -7.f);
    }
  }
}

TEST(GemmDirect, ZeroKZeroesOrPreservesC) {
  Tensor c = RandomTensor({4, 6}, 31);
  Tensor keep = c;
  Gemm(4, 6, 0, {nullptr, 0, false}, {nullptr, 0, false}, c.data(), 6,
       /*accumulate=*/true, nullptr);
  EXPECT_TRUE(BitwiseEqual(c, keep));
  Gemm(4, 6, 0, {nullptr, 0, false}, {nullptr, 0, false}, c.data(), 6,
       /*accumulate=*/false, nullptr);
  for (int64_t i = 0; i < c.numel(); ++i) EXPECT_EQ(c.data()[i], 0.f);
}

// ---------------------------------------------------------------------------
// Thread-count invariance.
// ---------------------------------------------------------------------------

TEST(GemmDeterminism, BitIdenticalAcrossThreadCounts) {
  const int64_t m = 129, k = 255, n = 130;
  Tensor a = RandomTensor({m, k}, 41);
  Tensor b = RandomTensor({k, n}, 42);
  Tensor serial;
  Matmul(a, b, serial, nullptr);
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    Tensor threaded;
    Matmul(a, b, threaded, &pool);
    EXPECT_TRUE(BitwiseEqual(threaded, serial)) << threads << " threads";
  }
}

TEST(GemmDeterminism, RowOpsMatchSerialBitwise) {
  // 200 * 100 = 20000 elements clears the row-op parallel threshold (2^14).
  Tensor matrix = RandomTensor({200, 100}, 51);
  Tensor bias = RandomTensor({100}, 52);
  Tensor serial_sum;
  SumRows(matrix, serial_sum, nullptr);
  Tensor serial_bias = matrix;
  AddRowBias(serial_bias, bias, nullptr);
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    Tensor pooled_sum;
    SumRows(matrix, pooled_sum, &pool);
    EXPECT_TRUE(BitwiseEqual(pooled_sum, serial_sum)) << threads;
    Tensor pooled_bias = matrix;
    AddRowBias(pooled_bias, bias, &pool);
    EXPECT_TRUE(BitwiseEqual(pooled_bias, serial_bias)) << threads;
  }
}

TEST(GemmDeterminism, LinearLayerIsPoolInvariant) {
  Rng rng_a(7), rng_b(7);
  Linear serial(37, 19, rng_a);
  Linear pooled(37, 19, rng_b);
  ThreadPool pool(4);
  pooled.SetComputePool(&pool);

  Tensor input = RandomTensor({23, 37}, 61);
  Tensor grad = RandomTensor({23, 19}, 62);
  Tensor out_s = serial.Forward(input);
  Tensor out_p = pooled.Forward(input);
  EXPECT_TRUE(BitwiseEqual(out_p, out_s));
  Tensor gin_s = serial.Backward(grad);
  Tensor gin_p = pooled.Backward(grad);
  EXPECT_TRUE(BitwiseEqual(gin_p, gin_s));
  for (size_t i = 0; i < serial.Parameters().size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(pooled.Parameters()[i]->grad,
                             serial.Parameters()[i]->grad));
  }
}

TEST(GemmDeterminism, Conv2dLayerIsPoolInvariant) {
  Rng rng_a(9), rng_b(9);
  Conv2d serial(3, 8, /*kernel=*/3, rng_a, /*stride=*/2, /*padding=*/1);
  Conv2d pooled(3, 8, /*kernel=*/3, rng_b, /*stride=*/2, /*padding=*/1);
  ThreadPool pool(4);
  pooled.SetComputePool(&pool);

  Tensor input = RandomTensor({5, 3, 11, 13}, 71);
  Tensor out_s = serial.Forward(input);
  Tensor out_p = pooled.Forward(input);
  EXPECT_TRUE(BitwiseEqual(out_p, out_s));
  Tensor grad = RandomTensor(out_s.shape(), 72);
  Tensor gin_s = serial.Backward(grad);
  Tensor gin_p = pooled.Backward(grad);
  EXPECT_TRUE(BitwiseEqual(gin_p, gin_s));
  for (size_t i = 0; i < serial.Parameters().size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(pooled.Parameters()[i]->grad,
                             serial.Parameters()[i]->grad));
  }
}

// A short CNN training run must reach a bit-identical parameter state for
// every pool size — the end-to-end version of the per-layer checks above,
// covering the optimizer/loss path and conv scratch reuse across steps.
TEST(GemmDeterminism, TrainingIsBitIdenticalAcrossPools) {
  ModelSpec spec;
  spec.name = "simple-cnn";
  spec.input_channels = 1;
  spec.input_height = 16;
  spec.input_width = 16;
  spec.num_classes = 4;

  auto run = [&](int threads) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    Rng init(1234);
    std::unique_ptr<Module> model = CreateModel(spec, init);
    model->SetComputePool(pool.get());
    model->SetTraining(true);
    SgdOptimizer opt(*model, /*learning_rate=*/0.05f);
    Rng data_rng(777);
    for (int step = 0; step < 4; ++step) {
      Tensor batch = Tensor::Uniform({8, 1, 16, 16}, data_rng, -1.f, 1.f);
      std::vector<int> labels(8);
      for (int& l : labels) {
        l = static_cast<int>(data_rng.UniformInt(spec.num_classes));
      }
      ZeroGrads(*model);
      Tensor logits = model->Forward(batch);
      LossResult loss = SoftmaxCrossEntropy(logits, labels);
      model->Backward(loss.grad_logits);
      opt.Step();
    }
    return FlattenState(*model);
  };

  const StateVector serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

// ---------------------------------------------------------------------------
// Pack-once API: GemmPackedA / GemmPackedB vs the pack-on-the-fly path.
// ---------------------------------------------------------------------------

// Shapes chosen to straddle the Mr/Nr register tiles, the Mc/Kc/Nc cache
// blocks (k > Kc exercises the FMA-chain continuation against a pre-packed
// operand), and the single-row-block jc-parallel mode (m <= Mc, n > Nc).
class GemmPackedShapeGrid
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {
};

TEST_P(GemmPackedShapeGrid, PackedAMatchesPlainGemmBitwise) {
  const auto [m, k, n] = GetParam();
  ThreadPool pool(3);
  Tensor a = RandomTensor({m, k}, 100 + m);
  Tensor at = RandomTensor({k, m}, 200 + k);
  Tensor b = RandomTensor({k, n}, 300 + n);
  for (bool trans_a : {false, true}) {
    const GemmOperand a_view =
        trans_a ? GemmOperand{at.data(), m, true}
                : GemmOperand{a.data(), k, false};
    PackedOperand packed;
    packed.PackA(m, k, a_view);
    ASSERT_TRUE(packed.is_a());
    EXPECT_EQ(packed.rows(), m);
    EXPECT_EQ(packed.cols(), k);
    const GemmOperand b_view{b.data(), n, false};
    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      for (bool accumulate : {false, true}) {
        Tensor out = RandomTensor({m, n}, 400);
        Tensor ref = out;  // identical seed bits for the accumulate case
        Gemm(m, n, k, a_view, b_view, ref.data(), n, accumulate, p);
        GemmPackedA(m, n, k, packed, b_view, out.data(), n, accumulate, p);
        EXPECT_TRUE(BitwiseEqual(out, ref))
            << m << "x" << k << "x" << n << " trans_a=" << trans_a
            << " pool=" << (p != nullptr) << " acc=" << accumulate;
      }
    }
  }
}

TEST_P(GemmPackedShapeGrid, PackedBMatchesPlainGemmBitwise) {
  const auto [m, k, n] = GetParam();
  ThreadPool pool(3);
  Tensor a = RandomTensor({m, k}, 500 + m);
  Tensor b = RandomTensor({k, n}, 600 + n);
  Tensor bt = RandomTensor({n, k}, 700 + k);
  const GemmOperand a_view{a.data(), k, false};
  for (bool trans_b : {false, true}) {
    const GemmOperand b_view =
        trans_b ? GemmOperand{bt.data(), k, true}
                : GemmOperand{b.data(), n, false};
    PackedOperand packed;
    packed.PackB(k, n, b_view);
    ASSERT_TRUE(packed.is_b());
    EXPECT_EQ(packed.rows(), k);
    EXPECT_EQ(packed.cols(), n);
    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      for (bool accumulate : {false, true}) {
        Tensor out = RandomTensor({m, n}, 800);
        Tensor ref = out;
        Gemm(m, n, k, a_view, b_view, ref.data(), n, accumulate, p);
        GemmPackedB(m, n, k, a_view, packed, out.data(), n, accumulate, p);
        EXPECT_TRUE(BitwiseEqual(out, ref))
            << m << "x" << k << "x" << n << " trans_b=" << trans_b
            << " pool=" << (p != nullptr) << " acc=" << accumulate;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Gemm, GemmPackedShapeGrid,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(5, 1, 9),
                      std::make_tuple(3, 5, 2), std::make_tuple(6, 16, 16),
                      std::make_tuple(97, 63, 41),
                      std::make_tuple(33, 300, 17),  // k crosses one Kc
                      std::make_tuple(100, 256, 96),
                      std::make_tuple(129, 255, 130),
                      // Single row block + multiple column blocks: the
                      // jc-parallel mode of the engine (m <= Mc, n > Nc).
                      std::make_tuple(6, 64, 1100),
                      std::make_tuple(75, 150, 1200)));

// Repacking a grown-then-invalidated buffer must behave exactly like a fresh
// pack: the conv/linear weight caches rely on Invalidate() + PackA per step.
TEST(GemmPackedOperand, InvalidateThenRepackMatchesFreshPack) {
  const int64_t m = 40, k = 70, n = 50;
  PackedOperand cache;
  Tensor w0 = RandomTensor({m, k}, 1);
  cache.PackA(m, k, {w0.data(), k, false});
  ASSERT_TRUE(cache.valid());

  cache.Invalidate();
  EXPECT_FALSE(cache.valid());
  EXPECT_FALSE(cache.is_a());

  // Repack smaller extents into the same (larger) buffer.
  const int64_t m2 = 12, k2 = 33;
  Tensor w1 = RandomTensor({m2, k2}, 2);
  cache.PackA(m2, k2, {w1.data(), k2, false});
  Tensor b = RandomTensor({k2, n}, 3);
  Tensor out({m2, n}), ref;
  GemmPackedA(m2, n, k2, cache, {b.data(), n, false}, out.data(), n,
              /*accumulate=*/false, nullptr);
  MatmulReference(w1, b, ref);
  EXPECT_TRUE(BitwiseEqual(out, ref));

  // And a side flip (the same buffer reused as a B-side pack).
  cache.PackB(k2, n, {b.data(), n, false});
  ASSERT_TRUE(cache.is_b());
  Tensor out2({m2, n});
  GemmPackedB(m2, n, k2, {w1.data(), k2, false}, cache, out2.data(), n,
              /*accumulate=*/false, nullptr);
  EXPECT_TRUE(BitwiseEqual(out2, ref));
}

}  // namespace
}  // namespace niid
