#ifndef NIID_TESTS_GRAD_CHECK_H_
#define NIID_TESTS_GRAD_CHECK_H_

#include <cmath>
#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "nn/module.h"
#include "nn/parameters.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace niid::testing {

/// Scalar projection loss: L = sum(output .* direction). Its gradient w.r.t.
/// the output is exactly `direction`, which lets us probe any module's
/// backward pass with finite differences.
inline double ProjectionLoss(const Tensor& output, const Tensor& direction) {
  double loss = 0.0;
  for (int64_t i = 0; i < output.numel(); ++i) {
    loss += static_cast<double>(output[i]) * direction[i];
  }
  return loss;
}

struct GradCheckOptions {
  float epsilon = 1e-3f;
  double rel_tolerance = 5e-2;
  double abs_tolerance = 5e-3;
  /// Check at most this many coordinates per tensor (spread evenly).
  int max_coords = 24;
  /// Fraction of coordinates allowed to disagree. Modules that stack
  /// BatchNorm + ReLU have pre-activations centered exactly at the ReLU kink,
  /// so finite differences are corrupted at a few coordinates no matter the
  /// epsilon; the analytic gradient is still correct almost everywhere.
  double max_failure_fraction = 0.0;
};

/// Verifies dL/dinput and dL/dparams of `module` at `input` by central
/// differences, where L = ProjectionLoss(Forward(input), direction).
/// The module must be freshly constructed (no stale caches) and in a
/// deterministic mode (BatchNorm in training mode is fine — statistics are
/// recomputed per forward; running-stat updates do not affect the output in
/// training mode... they do accumulate, which is harmless for the check).
inline void CheckModuleGradients(Module& module, const Tensor& input,
                                 Rng& rng,
                                 const GradCheckOptions& options = {}) {
  // Forward once to learn the output shape.
  Tensor probe_input = input;
  Tensor output = module.Forward(probe_input);
  Tensor direction = Tensor::Randn(output.shape(), rng);

  // Analytic gradients.
  ZeroGrads(module);
  output = module.Forward(probe_input);
  const Tensor grad_input = module.Backward(direction);
  ASSERT_EQ(grad_input.shape(), input.shape());

  int checked = 0;
  int failed = 0;
  std::string failure_log;
  auto numeric_vs_analytic = [&](float* slot, double analytic,
                                 const std::string& what, int64_t coord) {
    // `slot` may point into a Parameter::value that a layer has a packed
    // weight cache for; writing it directly bypasses the layers, so each
    // perturbation (and the restore) must invalidate explicitly.
    const float saved = *slot;
    *slot = saved + options.epsilon;
    module.InvalidateWeightCaches();
    const double plus = ProjectionLoss(module.Forward(probe_input), direction);
    *slot = saved - options.epsilon;
    module.InvalidateWeightCaches();
    const double minus =
        ProjectionLoss(module.Forward(probe_input), direction);
    *slot = saved;
    module.InvalidateWeightCaches();
    const double numeric = (plus - minus) / (2.0 * options.epsilon);
    const double scale =
        std::max({std::abs(numeric), std::abs(analytic), 1.0});
    ++checked;
    if (std::abs(analytic - numeric) >
        options.abs_tolerance + options.rel_tolerance * scale) {
      ++failed;
      failure_log += what + " coord " + std::to_string(coord) +
                     ": analytic=" + std::to_string(analytic) +
                     " numeric=" + std::to_string(numeric) + "\n";
    }
  };

  // Input gradient.
  {
    const int64_t n = probe_input.numel();
    const int64_t stride =
        std::max<int64_t>(1, n / std::max(1, options.max_coords));
    for (int64_t i = 0; i < n; i += stride) {
      numeric_vs_analytic(&probe_input[i], grad_input[i], "input", i);
    }
  }

  // Parameter gradients. Note: perturbing a parameter then re-running
  // Forward re-populates module caches; we recompute analytic grads first
  // and only read stored values.
  ZeroGrads(module);
  module.Forward(probe_input);
  module.Backward(direction);
  for (Parameter* p : module.Parameters()) {
    if (!p->trainable) continue;
    const int64_t n = p->value.numel();
    const int64_t stride =
        std::max<int64_t>(1, n / std::max(1, options.max_coords));
    for (int64_t i = 0; i < n; i += stride) {
      numeric_vs_analytic(&p->value[i], p->grad[i], p->name, i);
    }
  }

  ASSERT_GT(checked, 0);
  const double failure_fraction =
      static_cast<double>(failed) / static_cast<double>(checked);
  EXPECT_LE(failure_fraction, options.max_failure_fraction)
      << failed << "/" << checked << " coordinates disagree:\n"
      << failure_log;
}

}  // namespace niid::testing

#endif  // NIID_TESTS_GRAD_CHECK_H_
