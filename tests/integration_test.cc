// End-to-end tests of the experiment runner: dataset -> partition -> clients
// -> server -> rounds -> curves. These use tiny synthetic datasets so the
// whole file runs in seconds, but they exercise exactly the code path the
// bench harness uses to regenerate the paper's tables and figures.

#include <gtest/gtest.h>

#include <cmath>

#include "core/runner.h"
#include "util/stats.h"

namespace niid {
namespace {

ExperimentConfig FastConfig(const std::string& dataset = "covtype") {
  ExperimentConfig config;
  config.dataset = dataset;
  config.catalog.size_factor = 0.001;
  config.catalog.min_train_size = 240;
  config.catalog.min_test_size = 120;
  config.catalog.max_tabular_features = 100;
  config.rounds = 4;
  config.trials = 1;
  config.seed = 3;
  config.local.local_epochs = 2;
  config.local.batch_size = 32;
  config.partition.num_parties = 4;
  config.partition.min_samples_per_party = 4;
  return config;
}

TEST(RunnerTest, LearnsOnIidTabularData) {
  ExperimentConfig config = FastConfig();
  config.rounds = 12;
  config.local.learning_rate = 0.05f;  // tiny MLP needs more than paper lr
  const ExperimentResult result = RunExperiment(config);
  ASSERT_EQ(result.trials.size(), 1u);
  const TrialResult& trial = result.trials[0];
  ASSERT_EQ(trial.round_accuracy.size(), 12u);
  EXPECT_GT(trial.final_accuracy, 0.65);
  EXPECT_GT(trial.final_accuracy, trial.round_accuracy[0]);
}

TEST(RunnerTest, DeterministicAcrossRuns) {
  const ExperimentConfig config = FastConfig();
  const ExperimentResult a = RunExperiment(config);
  const ExperimentResult b = RunExperiment(config);
  EXPECT_EQ(a.trials[0].round_accuracy, b.trials[0].round_accuracy);
  EXPECT_EQ(a.trials[0].round_loss, b.trials[0].round_loss);
}

TEST(RunnerTest, TrialsDiffer) {
  ExperimentConfig config = FastConfig();
  config.trials = 2;
  config.partition.strategy = PartitionStrategy::kLabelDirichlet;
  config.partition.beta = 0.5;
  const ExperimentResult result = RunExperiment(config);
  ASSERT_EQ(result.trials.size(), 2u);
  EXPECT_NE(result.trials[0].round_accuracy,
            result.trials[1].round_accuracy);
}

TEST(RunnerTest, EvalEverySubsamplesCurve) {
  ExperimentConfig config = FastConfig();
  config.rounds = 6;
  config.eval_every = 3;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_EQ(result.trials[0].round_accuracy.size(), 2u);
}

TEST(RunnerTest, ObserverSeesEveryRound) {
  ExperimentConfig config = FastConfig();
  int calls = 0;
  RunExperiment(config, [&calls](int trial, const RoundStats& stats,
                                 const EvalResult&) {
    EXPECT_EQ(trial, 0);
    EXPECT_EQ(stats.round, calls);
    ++calls;
  });
  EXPECT_EQ(calls, config.rounds);
}

TEST(RunnerTest, ResolveLearningRateUsesPaperDefaults) {
  ExperimentConfig config = FastConfig("rcv1");
  config.local.learning_rate = 0.f;
  EXPECT_FLOAT_EQ(ResolveLearningRate(config), 0.1f);
  config.dataset = "mnist";
  EXPECT_FLOAT_EQ(ResolveLearningRate(config), 0.01f);
  config.local.learning_rate = 0.42f;
  EXPECT_FLOAT_EQ(ResolveLearningRate(config), 0.42f);
}

TEST(RunnerTest, UploadAccountingPropagates) {
  ExperimentConfig config = FastConfig();
  const ExperimentResult avg = RunExperiment(config);
  config.algorithm = "scaffold";
  const ExperimentResult scaffold = RunExperiment(config);
  EXPECT_EQ(scaffold.trials[0].upload_floats,
            2 * avg.trials[0].upload_floats);
}

// The core qualitative claim of the paper (Finding 1): label skew hurts,
// quantity skew basically does not. Run FedAvg under homo / #C=1 / quantity
// skew on the same dataset and compare.
TEST(RunnerTest, LabelSkewHurtsMoreThanQuantitySkew) {
  ExperimentConfig config = FastConfig("covtype");
  config.rounds = 12;
  config.local.learning_rate = 0.05f;
  config.catalog.min_train_size = 400;

  config.partition.strategy = PartitionStrategy::kHomogeneous;
  const double homo = RunExperiment(config).trials[0].final_accuracy;

  config.partition.strategy = PartitionStrategy::kLabelQuantity;
  config.partition.labels_per_party = 1;
  const double skew1 = RunExperiment(config).trials[0].final_accuracy;

  config.partition.strategy = PartitionStrategy::kQuantityDirichlet;
  config.partition.beta = 0.5;
  const double quantity = RunExperiment(config).trials[0].final_accuracy;

  EXPECT_GT(homo, skew1 - 0.02);      // #C=1 never beats IID materially
  EXPECT_GT(quantity, skew1 - 0.02);  // quantity skew is benign by contrast
}

TEST(RunnerTest, FemnistRealWorldPartitionRuns) {
  ExperimentConfig config;
  config.dataset = "femnist";
  config.catalog.size_factor = 0.0005;
  config.catalog.min_train_size = 200;
  config.catalog.min_test_size = 60;
  config.rounds = 2;
  config.local.local_epochs = 1;
  config.local.batch_size = 32;
  config.partition.strategy = PartitionStrategy::kRealWorld;
  config.partition.num_parties = 5;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_GT(result.trials[0].final_accuracy, 0.0);
}

TEST(RunnerTest, FcubeSyntheticPartitionRuns) {
  ExperimentConfig config;
  config.dataset = "fcube";
  config.catalog.size_factor = 0.1;
  config.catalog.min_train_size = 300;
  config.catalog.min_test_size = 100;
  config.rounds = 8;
  config.local.local_epochs = 3;
  config.local.batch_size = 32;
  config.local.learning_rate = 0.05f;
  config.partition.strategy = PartitionStrategy::kSynthetic;
  config.partition.num_parties = 4;
  const ExperimentResult result = RunExperiment(config);
  // FCUBE is linearly separable; the MLP should nail it quickly.
  EXPECT_GT(result.trials[0].final_accuracy, 0.9);
}

TEST(RunnerTest, BuildServerExposesClients) {
  const ExperimentConfig config = FastConfig();
  Dataset test;
  auto server = BuildServerForTrial(config, 0, &test);
  EXPECT_EQ(server->num_clients(), 4);
  EXPECT_GT(test.size(), 0);
  int64_t total = 0;
  for (int i = 0; i < server->num_clients(); ++i) {
    total += server->client(i).num_samples();
  }
  EXPECT_GT(total, 0);
}

TEST(RunnerTest, ThreadsDoNotChangeResults) {
  ExperimentConfig config = FastConfig();
  config.num_threads = 1;
  const ExperimentResult serial = RunExperiment(config);
  config.num_threads = 3;
  const ExperimentResult threaded = RunExperiment(config);
  EXPECT_EQ(serial.trials[0].round_accuracy,
            threaded.trials[0].round_accuracy);
}


TEST(RunnerTest, DpNoiseIsDeterministicPerSeed) {
  ExperimentConfig config = FastConfig();
  config.dp.clip_norm = 2.0;
  config.dp.noise_multiplier = 0.05;
  const ExperimentResult a = RunExperiment(config);
  const ExperimentResult b = RunExperiment(config);
  EXPECT_EQ(a.trials[0].round_accuracy, b.trials[0].round_accuracy);
  config.seed += 1;
  const ExperimentResult c = RunExperiment(config);
  EXPECT_NE(a.trials[0].round_accuracy, c.trials[0].round_accuracy);
}

TEST(RunnerTest, FedAvgMServerMomentumLearns) {
  ExperimentConfig config = FastConfig();
  config.rounds = 10;
  config.local.learning_rate = 0.05f;
  config.algo.server_momentum = 0.7f;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_GT(result.trials[0].final_accuracy, 0.6);
  // And it must actually change the trajectory vs plain FedAvg.
  config.algo.server_momentum = 0.f;
  const ExperimentResult plain = RunExperiment(config);
  EXPECT_NE(result.trials[0].round_accuracy, plain.trials[0].round_accuracy);
}


TEST(LrScheduleTest, ConstantIsIdentity) {
  ExperimentConfig config;
  config.lr_schedule = LrSchedule::kConstant;
  for (int round : {0, 5, 49}) {
    EXPECT_FLOAT_EQ(ScheduledLearningRate(config, 0.1f, round, 50), 0.1f);
  }
}

TEST(LrScheduleTest, StepDecayHalvesOnSchedule) {
  ExperimentConfig config;
  config.lr_schedule = LrSchedule::kStepDecay;
  config.lr_decay_every = 10;
  EXPECT_FLOAT_EQ(ScheduledLearningRate(config, 0.8f, 0, 50), 0.8f);
  EXPECT_FLOAT_EQ(ScheduledLearningRate(config, 0.8f, 9, 50), 0.8f);
  EXPECT_FLOAT_EQ(ScheduledLearningRate(config, 0.8f, 10, 50), 0.4f);
  EXPECT_FLOAT_EQ(ScheduledLearningRate(config, 0.8f, 25, 50), 0.2f);
  EXPECT_FLOAT_EQ(ScheduledLearningRate(config, 0.8f, 49, 50), 0.05f);
}

TEST(LrScheduleTest, CosineAnnealsToFloor) {
  ExperimentConfig config;
  config.lr_schedule = LrSchedule::kCosine;
  config.lr_min_factor = 0.1f;
  const float start = ScheduledLearningRate(config, 1.f, 0, 21);
  const float middle = ScheduledLearningRate(config, 1.f, 10, 21);
  const float end = ScheduledLearningRate(config, 1.f, 20, 21);
  EXPECT_FLOAT_EQ(start, 1.f);
  EXPECT_NEAR(middle, 0.55f, 1e-5f);  // halfway between 1 and 0.1
  EXPECT_NEAR(end, 0.1f, 1e-6f);
  // Monotone decreasing.
  float previous = 2.f;
  for (int round = 0; round < 21; ++round) {
    const float lr = ScheduledLearningRate(config, 1.f, round, 21);
    EXPECT_LT(lr, previous + 1e-7f);
    previous = lr;
  }
}

TEST(LrScheduleTest, EndToEndStepDecayStillLearns) {
  ExperimentConfig config = FastConfig();
  config.rounds = 10;
  config.local.learning_rate = 0.1f;
  config.lr_schedule = LrSchedule::kStepDecay;
  config.lr_decay_every = 4;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_GT(result.trials[0].final_accuracy, 0.6);
  // And differs from the constant-lr trajectory.
  config.lr_schedule = LrSchedule::kConstant;
  const ExperimentResult constant = RunExperiment(config);
  EXPECT_NE(result.trials[0].round_accuracy,
            constant.trials[0].round_accuracy);
}

}  // namespace
}  // namespace niid
