// Bitwise-determinism tests for the non-GEMM kernel layer (DESIGN.md §8).
//
// Two invariants are enforced, both as exact bit equality:
//   1. Every production kernel matches its plain-scalar Kernel*Reference
//      oracle, in every build (scalar and AVX2 backends implement the same
//      arithmetic definition).
//   2. Kernels that accept a ThreadPool return the same bits for every
//      thread count, including the serial no-pool path — and so does a full
//      federated round built on top of them.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "data/synthetic.h"
#include "fl/client.h"
#include "nn/batchnorm.h"
#include "nn/loss.h"
#include "nn/models/factory.h"
#include "nn/parameters.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace niid {
namespace {

// Sizes that exercise the empty case, sub-vector tails, exact vector
// multiples, and the parallel threshold (1 << 15).
const std::vector<int64_t> kSizes = {0,  1,  3,   7,    8,    9,
                                     16, 31, 100, 1023, 4096, (1 << 15) + 5};

std::vector<float> RandomVector(int64_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.Normal());
  return v;
}

template <typename T>
void ExpectBitEqual(const std::vector<T>& a, const std::vector<T>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "element " << i;
  }
}

// ------------------------------------------------- kernel vs reference

TEST(KernelOracleTest, AxpyMatchesReferenceBitwise) {
  Rng rng(1);
  for (int64_t n : kSizes) {
    const std::vector<float> x = RandomVector(n, rng);
    std::vector<float> y = RandomVector(n, rng);
    std::vector<float> y_ref = y;
    KernelAxpy(n, 0.37f, x.data(), y.data());
    KernelAxpyReference(n, 0.37f, x.data(), y_ref.data());
    ExpectBitEqual(y, y_ref);
  }
}

TEST(KernelOracleTest, SubMatchesReferenceBitwise) {
  Rng rng(2);
  for (int64_t n : kSizes) {
    const std::vector<float> a = RandomVector(n, rng);
    const std::vector<float> b = RandomVector(n, rng);
    std::vector<float> out(n, 0.f), out_ref(n, 0.f);
    KernelSub(n, a.data(), b.data(), out.data());
    KernelSubReference(n, a.data(), b.data(), out_ref.data());
    ExpectBitEqual(out, out_ref);
  }
}

TEST(KernelOracleTest, SgdMomentumStepMatchesReferenceBitwise) {
  Rng rng(3);
  for (int64_t n : kSizes) {
    std::vector<float> w = RandomVector(n, rng);
    const std::vector<float> g = RandomVector(n, rng);
    std::vector<float> v = RandomVector(n, rng);
    std::vector<float> w_ref = w, v_ref = v;
    KernelSgdMomentumStep(n, 0.01f, 0.9f, 1e-4f, w.data(), g.data(), v.data());
    KernelSgdMomentumStepReference(n, 0.01f, 0.9f, 1e-4f, w_ref.data(),
                                   g.data(), v_ref.data());
    ExpectBitEqual(w, w_ref);
    ExpectBitEqual(v, v_ref);
  }
}

TEST(KernelOracleTest, ReluForwardMatchesReferenceBitwise) {
  Rng rng(4);
  for (int64_t n : kSizes) {
    const std::vector<float> x = RandomVector(n, rng);
    std::vector<float> out(n, -1.f), out_ref(n, -1.f);
    std::vector<uint8_t> mask(n, 2), mask_ref(n, 2);
    KernelReluForward(n, x.data(), out.data(), mask.data());
    KernelReluForwardReference(n, x.data(), out_ref.data(), mask_ref.data());
    ExpectBitEqual(out, out_ref);
    ExpectBitEqual(mask, mask_ref);
  }
}

TEST(KernelOracleTest, ReluForwardInPlaceAliasing) {
  Rng rng(5);
  for (int64_t n : kSizes) {
    const std::vector<float> x = RandomVector(n, rng);
    std::vector<float> inplace = x, out(n, 0.f);
    std::vector<uint8_t> mask_a(n), mask_b(n);
    KernelReluForward(n, x.data(), out.data(), mask_a.data());
    KernelReluForward(n, inplace.data(), inplace.data(), mask_b.data());
    ExpectBitEqual(inplace, out);
    ExpectBitEqual(mask_a, mask_b);
  }
}

TEST(KernelOracleTest, ReluBackwardMatchesReferenceBitwise) {
  Rng rng(6);
  for (int64_t n : kSizes) {
    const std::vector<float> gout = RandomVector(n, rng);
    std::vector<uint8_t> mask(n);
    for (int64_t i = 0; i < n; ++i) mask[i] = (rng.Uniform() < 0.5) ? 1 : 0;
    std::vector<float> gin(n, -1.f), gin_ref(n, -1.f);
    KernelReluBackward(n, gout.data(), mask.data(), gin.data());
    KernelReluBackwardReference(n, gout.data(), mask.data(), gin_ref.data());
    ExpectBitEqual(gin, gin_ref);
  }
}

TEST(KernelOracleTest, SumSqMatchesReferenceBitwise) {
  Rng rng(7);
  for (int64_t n : kSizes) {
    const std::vector<float> x = RandomVector(n, rng);
    double sum = 0.25, sum_sq = 0.5;  // += semantics: start nonzero
    double sum_ref = 0.25, sum_sq_ref = 0.5;
    KernelSumSq(n, x.data(), &sum, &sum_sq);
    KernelSumSqReference(n, x.data(), &sum_ref, &sum_sq_ref);
    EXPECT_EQ(sum, sum_ref) << "n=" << n;
    EXPECT_EQ(sum_sq, sum_sq_ref) << "n=" << n;
  }
}

TEST(KernelOracleTest, DySumsMatchesReferenceBitwise) {
  Rng rng(8);
  for (int64_t n : kSizes) {
    const std::vector<float> dy = RandomVector(n, rng);
    const std::vector<float> xhat = RandomVector(n, rng);
    double a = 1.0, b = -1.0, a_ref = 1.0, b_ref = -1.0;
    KernelDySums(n, dy.data(), xhat.data(), &a, &b);
    KernelDySumsReference(n, dy.data(), xhat.data(), &a_ref, &b_ref);
    EXPECT_EQ(a, a_ref) << "n=" << n;
    EXPECT_EQ(b, b_ref) << "n=" << n;
  }
}

TEST(KernelOracleTest, SumMatchesSumSqTree) {
  Rng rng(9);
  for (int64_t n : kSizes) {
    const std::vector<float> x = RandomVector(n, rng);
    double sum = 0.0, sum_sq = 0.0;
    KernelSumSqReference(n, x.data(), &sum, &sum_sq);
    EXPECT_EQ(KernelSum(n, x.data()), sum) << "n=" << n;
  }
}

TEST(KernelOracleTest, BnNormalizeMatchesReferenceBitwise) {
  Rng rng(10);
  for (int64_t n : kSizes) {
    const std::vector<float> x = RandomVector(n, rng);
    std::vector<float> xhat(n), out(n), xhat_ref(n), out_ref(n);
    KernelBnNormalize(n, 0.3f, 1.7f, 0.9f, -0.2f, x.data(), xhat.data(),
                      out.data());
    KernelBnNormalizeReference(n, 0.3f, 1.7f, 0.9f, -0.2f, x.data(),
                               xhat_ref.data(), out_ref.data());
    ExpectBitEqual(xhat, xhat_ref);
    ExpectBitEqual(out, out_ref);
  }
}

TEST(KernelOracleTest, BnBackwardDxMatchesReferenceBitwise) {
  Rng rng(11);
  for (int64_t n : kSizes) {
    const std::vector<float> dy = RandomVector(n, rng);
    const std::vector<float> xhat = RandomVector(n, rng);
    std::vector<float> dx(n), dx_ref(n);
    KernelBnBackwardDx(n, 1.3f, 0.02, -0.01, dy.data(), xhat.data(),
                       dx.data());
    KernelBnBackwardDxReference(n, 1.3f, 0.02, -0.01, dy.data(), xhat.data(),
                                dx_ref.data());
    ExpectBitEqual(dx, dx_ref);
  }
}

TEST(KernelOracleTest, SoftmaxXentRowGradientSumsToZeroishAndFlagsArgmax) {
  // The row kernel's semantics (softmax - onehot, scaled) sanity-checked
  // against a hand scalar evaluation.
  const int64_t classes = 5;
  std::vector<float> row = {0.1f, 2.0f, -1.0f, 0.5f, 0.3f};
  std::vector<float> expect = row;
  double loss = 0.0;
  bool correct = false;
  KernelSoftmaxXentRow(classes, /*label=*/1, /*inv_n=*/0.5f, row.data(), &loss,
                       &correct);
  EXPECT_TRUE(correct);  // argmax is index 1
  // Scalar re-derivation with the kernel's own operation order.
  float max_v = expect[0];
  for (float v : expect) max_v = std::max(max_v, v);
  float sum = 0.f;
  for (float& v : expect) {
    v = std::exp(v - max_v);
    sum += v;
  }
  const float inv = 1.f / sum;
  EXPECT_NEAR(loss, -std::log(expect[1] * inv), 1e-6);
  EXPECT_GT(loss, 0.0);
}

// --------------------------------------------- codec kernels vs reference

TEST(KernelOracleTest, MinMaxMatchesReferenceBitwise) {
  Rng rng(41);
  for (int64_t n : kSizes) {
    if (n == 0) continue;  // min/max of an empty range is undefined
    const std::vector<float> x = RandomVector(n, rng);
    float lo = 0.f, hi = 0.f, lo_ref = 0.f, hi_ref = 0.f;
    KernelMinMax(n, x.data(), &lo, &hi);
    KernelMinMaxReference(n, x.data(), &lo_ref, &hi_ref);
    EXPECT_EQ(lo, lo_ref) << "n=" << n;
    EXPECT_EQ(hi, hi_ref) << "n=" << n;
    EXPECT_LE(lo, hi);
  }
}

TEST(KernelOracleTest, QuantizeAffineMatchesReferenceBitwise) {
  Rng rng(42);
  for (int64_t n : kSizes) {
    const std::vector<float> x = RandomVector(n, rng);
    float lo = 0.f, hi = 0.f;
    if (n > 0) KernelMinMax(n, x.data(), &lo, &hi);
    for (const int qmax : {255, 15}) {
      const float scale = (hi - lo) / static_cast<float>(qmax);
      const float inv_scale = scale > 0.f ? 1.0f / scale : 0.f;
      std::vector<uint8_t> q(n, 0xee), q_ref(n, 0xee);
      KernelQuantizeAffine(n, x.data(), lo, inv_scale, qmax, q.data());
      KernelQuantizeAffineReference(n, x.data(), lo, inv_scale, qmax,
                                    q_ref.data());
      ExpectBitEqual(q, q_ref);
      for (const uint8_t code : q) EXPECT_LE(code, qmax);
    }
  }
}

TEST(KernelOracleTest, DequantAxpyMatchesReferenceBitwise) {
  Rng rng(43);
  for (int64_t n : kSizes) {
    std::vector<uint8_t> q(n);
    for (auto& code : q) code = static_cast<uint8_t>(rng.UniformInt(256));
    std::vector<float> out = RandomVector(n, rng);
    std::vector<float> out_ref = out;
    KernelDequantAxpy(n, q.data(), 0.037f, -1.25f, out.data());
    KernelDequantAxpyReference(n, q.data(), 0.037f, -1.25f, out_ref.data());
    ExpectBitEqual(out, out_ref);
  }
}

TEST(KernelOracleTest, AbsMatchesReferenceBitwise) {
  Rng rng(44);
  for (int64_t n : kSizes) {
    const std::vector<float> x = RandomVector(n, rng);
    std::vector<float> a(n, -7.f), a_ref(n, -7.f);
    KernelAbs(n, x.data(), a.data());
    KernelAbsReference(n, x.data(), a_ref.data());
    ExpectBitEqual(a, a_ref);
    for (int64_t i = 0; i < n; ++i) EXPECT_GE(a[i], 0.f);
  }
}

TEST(KernelOracleTest, CountAbsGreaterMatchesReferenceBitwise) {
  Rng rng(45);
  for (int64_t n : kSizes) {
    const std::vector<float> x = RandomVector(n, rng);
    for (const float threshold : {0.0f, 0.5f, 1.5f}) {
      EXPECT_EQ(KernelCountAbsGreater(n, x.data(), threshold),
                KernelCountAbsGreaterReference(n, x.data(), threshold))
          << "n=" << n << " t=" << threshold;
    }
  }
}

TEST(KernelOracleTest, QuantizeRoundTripErrorBoundedByHalfStep) {
  // The quantizer's contract: |dequant(quant(x)) - x| <= scale/2 (plus float
  // rounding slack) for every coordinate inside [lo, hi].
  Rng rng(46);
  const int64_t n = 1024;
  const std::vector<float> x = RandomVector(n, rng);
  float lo = 0.f, hi = 0.f;
  KernelMinMax(n, x.data(), &lo, &hi);
  for (const int qmax : {255, 15}) {
    const float scale = (hi - lo) / static_cast<float>(qmax);
    const float inv_scale = scale > 0.f ? 1.0f / scale : 0.f;
    std::vector<uint8_t> q(n);
    KernelQuantizeAffine(n, x.data(), lo, inv_scale, qmax, q.data());
    std::vector<float> reconstructed(n, 0.f);
    KernelDequantAxpy(n, q.data(), scale, lo, reconstructed.data());
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_LE(std::fabs(reconstructed[i] - x[i]), 0.51f * scale)
          << "qmax=" << qmax << " i=" << i;
    }
  }
}

// ------------------------------------------------- thread invariance

// Runs `body(pool)` for no-pool and 1/2/8-thread pools, returning the
// produced vectors; the caller asserts all four are bit-identical.
template <typename Body>
void ExpectPoolInvariant(const Body& body) {
  const std::vector<float> base = body(nullptr);
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    ExpectBitEqual(body(&pool), base);
  }
}

// Large enough that the pooled path actually engages (> 1 << 15).
constexpr int64_t kParallelN = (1 << 15) + (1 << 14) + 3;

TEST(KernelThreadInvarianceTest, Scale) {
  Rng rng(20);
  const std::vector<float> x = RandomVector(kParallelN, rng);
  ExpectPoolInvariant([&](ThreadPool* pool) {
    std::vector<float> v = x;
    KernelScale(kParallelN, 0.73f, v.data(), pool);
    return v;
  });
}

TEST(KernelThreadInvarianceTest, Axpy) {
  Rng rng(21);
  const std::vector<float> x = RandomVector(kParallelN, rng);
  const std::vector<float> y = RandomVector(kParallelN, rng);
  ExpectPoolInvariant([&](ThreadPool* pool) {
    std::vector<float> v = y;
    KernelAxpy(kParallelN, -1.1f, x.data(), v.data(), pool);
    return v;
  });
}

TEST(KernelThreadInvarianceTest, Sub) {
  Rng rng(22);
  const std::vector<float> a = RandomVector(kParallelN, rng);
  const std::vector<float> b = RandomVector(kParallelN, rng);
  ExpectPoolInvariant([&](ThreadPool* pool) {
    std::vector<float> out(kParallelN);
    KernelSub(kParallelN, a.data(), b.data(), out.data(), pool);
    return out;
  });
}

TEST(KernelThreadInvarianceTest, SgdMomentumStep) {
  Rng rng(23);
  const std::vector<float> w0 = RandomVector(kParallelN, rng);
  const std::vector<float> g = RandomVector(kParallelN, rng);
  const std::vector<float> v0 = RandomVector(kParallelN, rng);
  ExpectPoolInvariant([&](ThreadPool* pool) {
    std::vector<float> w = w0, v = v0;
    KernelSgdMomentumStep(kParallelN, 0.05f, 0.9f, 5e-4f, w.data(), g.data(),
                          v.data(), pool);
    w.insert(w.end(), v.begin(), v.end());  // compare both outputs
    return w;
  });
}

TEST(KernelThreadInvarianceTest, ReluForwardAndBackward) {
  Rng rng(24);
  const std::vector<float> x = RandomVector(kParallelN, rng);
  const std::vector<float> gout = RandomVector(kParallelN, rng);
  ExpectPoolInvariant([&](ThreadPool* pool) {
    std::vector<float> out(kParallelN);
    std::vector<uint8_t> mask(kParallelN);
    KernelReluForward(kParallelN, x.data(), out.data(), mask.data(), pool);
    std::vector<float> gin(kParallelN);
    KernelReluBackward(kParallelN, gout.data(), mask.data(), gin.data(), pool);
    out.insert(out.end(), gin.begin(), gin.end());
    return out;
  });
}

TEST(KernelThreadInvarianceTest, BatchNormLayerForwardBackward) {
  // The layer parallelizes over channels and planes; every channel is wholly
  // owned by one task, so results must not depend on the thread count.
  Rng data_rng(25);
  Tensor input({4, 6, 9, 9});
  for (int64_t i = 0; i < input.numel(); ++i) {
    input.data()[i] = static_cast<float>(data_rng.Normal());
  }
  Tensor grad({4, 6, 9, 9});
  for (int64_t i = 0; i < grad.numel(); ++i) {
    grad.data()[i] = static_cast<float>(data_rng.Normal());
  }

  auto run = [&](ThreadPool* pool) {
    BatchNorm bn(6);
    bn.SetComputePool(pool);
    bn.SetTraining(true);
    const Tensor out = bn.Forward(input);
    const Tensor gin = bn.Backward(grad);
    std::vector<float> bits(out.data(), out.data() + out.numel());
    bits.insert(bits.end(), gin.data(), gin.data() + gin.numel());
    const Tensor& rm = bn.running_mean();
    bits.insert(bits.end(), rm.data(), rm.data() + rm.numel());
    const Tensor& rv = bn.running_var();
    bits.insert(bits.end(), rv.data(), rv.data() + rv.numel());
    return bits;
  };
  ExpectPoolInvariant(run);
}

TEST(KernelThreadInvarianceTest, EndToEndClientRoundIsBitIdentical) {
  SyntheticTabularConfig config;
  config.num_features = 12;
  config.train_size = 96;
  config.test_size = 1;
  config.seed = 99;
  const Dataset data = MakeSyntheticTabular(config).train;

  ModelSpec spec;
  spec.name = "mlp";
  spec.input_features = 12;
  spec.num_classes = 2;

  LocalTrainOptions options;
  options.local_epochs = 2;
  options.batch_size = 32;
  options.learning_rate = 0.05f;

  Rng init(5);
  auto global_model = MakeModelFactory(spec)(init);
  const StateVector global = FlattenState(*global_model);

  auto run = [&](ThreadPool* pool) {
    Client client(0, data, Rng(123));
    TrainContext ctx(MakeModelFactory(spec));
    if (pool != nullptr) ctx.model->SetComputePool(pool);
    const LocalUpdate update = client.Train(ctx, global, options);
    std::vector<float> bits = update.delta;
    bits.push_back(static_cast<float>(update.average_loss));
    return bits;
  };
  ExpectPoolInvariant(run);
}

// ---------------------------------------- backward-pass kernels (PR 7)
//
// Oracle + thread-invariance coverage for the kernels the fused conv/BN
// backward paths lean on. Shapes deliberately include odd tails (n not a
// multiple of 8, rows/cols not multiples of the 8x8 transpose block) and
// degenerate extents.

// (planes, plane_stride_slack, n) grids: n spans sub-register tails, exact
// multiples, and the 1x1-spatial degenerate case.
const std::vector<int64_t> kPlaneCounts = {1, 2, 3, 7};
const std::vector<int64_t> kPlaneLens = {1, 3, 8, 9, 31, 100, 257};

TEST(KernelBackwardOracleTest, PlaneSumMatchesReferenceBitwise) {
  Rng rng(40);
  for (int64_t planes : kPlaneCounts) {
    for (int64_t n : kPlaneLens) {
      const int64_t stride = n + 5;  // planes are strided, not contiguous
      const std::vector<float> x = RandomVector(planes * stride, rng);
      const double got = KernelPlaneSum(planes, stride, n, x.data());
      const double want = KernelPlaneSumReference(planes, stride, n, x.data());
      EXPECT_EQ(got, want) << "planes=" << planes << " n=" << n;
    }
  }
}

TEST(KernelBackwardOracleTest, BnBackwardReduceMatchesReferenceBitwise) {
  Rng rng(41);
  for (int64_t planes : kPlaneCounts) {
    for (int64_t n : kPlaneLens) {
      const int64_t stride = n + 11;
      const std::vector<float> dy = RandomVector(planes * stride, rng);
      const std::vector<float> xhat = RandomVector(planes * stride, rng);
      // Nonzero seeds: the kernel accumulates into the caller's totals.
      double sum_dy = 0.5, sum_dy_xhat = -0.25;
      double ref_dy = 0.5, ref_dy_xhat = -0.25;
      KernelBnBackwardReduce(planes, stride, n, dy.data(), xhat.data(),
                             &sum_dy, &sum_dy_xhat);
      KernelBnBackwardReduceReference(planes, stride, n, dy.data(),
                                      xhat.data(), &ref_dy, &ref_dy_xhat);
      EXPECT_EQ(sum_dy, ref_dy) << "planes=" << planes << " n=" << n;
      EXPECT_EQ(sum_dy_xhat, ref_dy_xhat) << "planes=" << planes
                                          << " n=" << n;
    }
  }
}

TEST(KernelBackwardOracleTest,
     BnBackwardReduceChainsPlanesLikePerPlaneDySums) {
  // The production contract: one fused call == per-plane KernelDySums calls
  // chained in increasing plane order (what batchnorm.cc used to do inline).
  Rng rng(42);
  const int64_t planes = 5, n = 100, stride = n;
  const std::vector<float> dy = RandomVector(planes * stride, rng);
  const std::vector<float> xhat = RandomVector(planes * stride, rng);
  double fused_dy = 0.0, fused_dy_xhat = 0.0;
  KernelBnBackwardReduce(planes, stride, n, dy.data(), xhat.data(), &fused_dy,
                         &fused_dy_xhat);
  double loop_dy = 0.0, loop_dy_xhat = 0.0;
  for (int64_t p = 0; p < planes; ++p) {
    double s = 0.0, sx = 0.0;
    KernelDySums(n, dy.data() + p * stride, xhat.data() + p * stride, &s, &sx);
    loop_dy += s;
    loop_dy_xhat += sx;
  }
  EXPECT_EQ(fused_dy, loop_dy);
  EXPECT_EQ(fused_dy_xhat, loop_dy_xhat);
}

TEST(KernelBackwardOracleTest, BatchTransposeMatchesReferenceBitwise) {
  Rng rng(43);
  // Rows/cols straddle the 8x8 in-register block: 1..8, odd tails, larger.
  const std::vector<std::pair<int64_t, int64_t>> shapes = {
      {1, 1}, {1, 9}, {7, 3}, {8, 8}, {8, 16}, {9, 9}, {13, 21}, {16, 100}};
  for (int64_t batch : {1, 2, 5}) {
    for (const auto& [rows, cols] : shapes) {
      const std::vector<float> src = RandomVector(batch * rows * cols, rng);
      std::vector<float> dst(batch * rows * cols, -7.f);
      std::vector<float> ref(batch * rows * cols, -7.f);
      KernelBatchTranspose(batch, rows, cols, src.data(), dst.data());
      KernelBatchTransposeReference(batch, rows, cols, src.data(), ref.data());
      ExpectBitEqual(dst, ref);
    }
  }
}

TEST(KernelBackwardOracleTest, AddTransposedMatchesReferenceBitwise) {
  Rng rng(44);
  const std::vector<std::pair<int64_t, int64_t>> shapes = {
      {1, 1}, {1, 9}, {7, 3}, {8, 8}, {9, 9}, {13, 21}, {75, 6}, {150, 16}};
  for (const auto& [rows, cols] : shapes) {
    const std::vector<float> src = RandomVector(rows * cols, rng);
    const std::vector<float> seed = RandomVector(rows * cols, rng);
    std::vector<float> dst = seed;
    std::vector<float> ref = seed;
    KernelAddTransposed(rows, cols, src.data(), dst.data());
    KernelAddTransposedReference(rows, cols, src.data(), ref.data());
    ExpectBitEqual(dst, ref);
  }
}

TEST(KernelThreadInvarianceTest, BatchTranspose) {
  Rng rng(45);
  // Big enough to clear the parallel threshold; odd rows/cols tails.
  const int64_t batch = 16, rows = 33, cols = 129;
  const std::vector<float> src = RandomVector(batch * rows * cols, rng);
  ExpectPoolInvariant([&](ThreadPool* pool) {
    std::vector<float> dst(batch * rows * cols);
    KernelBatchTranspose(batch, rows, cols, src.data(), dst.data(), pool);
    return dst;
  });
}

// ------------------------------------------------- loss variants agree

TEST(KernelLossTest, IntoVariantIsBitIdenticalToValueVariant) {
  Rng rng(30);
  Tensor logits({16, 10});
  for (int64_t i = 0; i < logits.numel(); ++i) {
    logits.data()[i] = static_cast<float>(rng.Normal());
  }
  std::vector<int> labels(16);
  for (int& l : labels) l = static_cast<int>(rng.UniformInt(10));

  const LossResult by_value = SoftmaxCrossEntropy(logits, labels);
  LossResult reused;
  // Seed the scratch with a stale shape to exercise the resize path.
  reused.grad_logits = Tensor({3, 2});
  SoftmaxCrossEntropyInto(logits, labels, reused);
  SoftmaxCrossEntropyInto(logits, labels, reused);  // steady-state call
  EXPECT_EQ(by_value.loss, reused.loss);
  EXPECT_EQ(by_value.correct, reused.correct);
  ASSERT_EQ(by_value.grad_logits.shape(), reused.grad_logits.shape());
  for (int64_t i = 0; i < logits.numel(); ++i) {
    EXPECT_EQ(by_value.grad_logits.data()[i], reused.grad_logits.data()[i]);
  }
}

}  // namespace
}  // namespace niid
