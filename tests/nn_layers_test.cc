#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "grad_check.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/models/resnet.h"
#include "nn/optimizer.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "tensor/ops.h"

namespace niid {
namespace {

using ::niid::testing::CheckModuleGradients;
using ::niid::testing::GradCheckOptions;

// ---------------------------------------------------------------- linear

TEST(LinearTest, ForwardMatchesManualComputation) {
  Rng rng(1);
  Linear layer(2, 3, rng);
  // Overwrite weights with known values: W = [[1,2],[3,4],[5,6]], b = 0.
  auto params = layer.Parameters();
  params[0]->value = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  params[1]->value = Tensor::FromVector({3}, {0.5f, 0.f, -0.5f});
  const Tensor x = Tensor::FromVector({1, 2}, {10, 20});
  const Tensor y = layer.Forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 50.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 110.f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 169.5f);
}

TEST(LinearTest, GradientsMatchFiniteDifferences) {
  Rng rng(2);
  Linear layer(5, 4, rng);
  const Tensor input = Tensor::Randn({3, 5}, rng);
  CheckModuleGradients(layer, input, rng);
}

TEST(LinearTest, GradientsAccumulateAcrossBackwardCalls) {
  Rng rng(3);
  Linear layer(2, 2, rng);
  const Tensor x = Tensor::Ones({1, 2});
  const Tensor g = Tensor::Ones({1, 2});
  layer.Forward(x);
  layer.Backward(g);
  const Tensor first = layer.Parameters()[0]->grad;
  layer.Forward(x);
  layer.Backward(g);
  const Tensor second = layer.Parameters()[0]->grad;
  for (int64_t i = 0; i < first.numel(); ++i) {
    EXPECT_FLOAT_EQ(second[i], 2 * first[i]);
  }
}

// ---------------------------------------------------------------- conv

TEST(Conv2dTest, ForwardKnownKernel) {
  Rng rng(4);
  Conv2d conv(1, 1, 2, rng);  // 2x2 kernel
  auto params = conv.Parameters();
  params[0]->value = Tensor::FromVector({1, 4}, {1, 0, 0, 1});  // identity+BR
  params[1]->value = Tensor::FromVector({1}, {0.f});
  const Tensor x = Tensor::FromVector({1, 1, 3, 3},
                                      {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Tensor y = conv.Forward(x);
  ASSERT_EQ(y.shape(), (std::vector<int64_t>{1, 1, 2, 2}));
  // y[0,0] = x[0,0] + x[1,1] = 1 + 5.
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 6.f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 14.f);
}

TEST(Conv2dTest, OutputShapeWithStridePadding) {
  Rng rng(5);
  Conv2d conv(3, 8, 3, rng, /*stride=*/2, /*padding=*/1);
  const Tensor x = Tensor::Randn({2, 3, 9, 9}, rng);
  const Tensor y = conv.Forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 8, 5, 5}));
}

TEST(Conv2dTest, GradientsMatchFiniteDifferences) {
  Rng rng(6);
  Conv2d conv(2, 3, 3, rng, 1, 1);
  const Tensor input = Tensor::Randn({2, 2, 5, 5}, rng);
  CheckModuleGradients(conv, input, rng);
}

TEST(Conv2dTest, StridedGradients) {
  Rng rng(7);
  Conv2d conv(1, 2, 3, rng, /*stride=*/2, /*padding=*/0);
  const Tensor input = Tensor::Randn({1, 1, 7, 7}, rng);
  CheckModuleGradients(conv, input, rng);
}

// ---------------------------------------------------------------- pooling

TEST(MaxPool2dTest, ForwardPicksMaxima) {
  MaxPool2d pool(2);
  const Tensor x = Tensor::FromVector({1, 1, 4, 4},
                                      {1, 2, 3, 4,
                                       5, 6, 7, 8,
                                       9, 10, 11, 12,
                                       13, 14, 15, 16});
  const Tensor y = pool.Forward(x);
  ASSERT_EQ(y.shape(), (std::vector<int64_t>{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 6.f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 8.f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 0), 14.f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 16.f);
}

TEST(MaxPool2dTest, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  const Tensor x = Tensor::FromVector({1, 1, 2, 2}, {1, 9, 3, 4});
  pool.Forward(x);
  const Tensor g = Tensor::FromVector({1, 1, 1, 1}, {5.f});
  const Tensor dx = pool.Backward(g);
  EXPECT_FLOAT_EQ(dx.at(0, 0, 0, 0), 0.f);
  EXPECT_FLOAT_EQ(dx.at(0, 0, 0, 1), 5.f);
}

TEST(MaxPool2dTest, GradientsMatchFiniteDifferences) {
  Rng rng(8);
  MaxPool2d pool(2);
  // Spread values so the argmax is stable under the probe epsilon.
  Tensor input = Tensor::Randn({2, 2, 6, 6}, rng, 0.f, 10.f);
  CheckModuleGradients(pool, input, rng);
}

TEST(GlobalAvgPoolTest, ForwardAndBackward) {
  GlobalAvgPool pool;
  const Tensor x = Tensor::FromVector({1, 2, 2, 2},
                                      {1, 2, 3, 4, 10, 20, 30, 40});
  const Tensor y = pool.Forward(x);
  ASSERT_EQ(y.shape(), (std::vector<int64_t>{1, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 25.f);
  const Tensor g = Tensor::FromVector({1, 2}, {4.f, 8.f});
  const Tensor dx = pool.Backward(g);
  EXPECT_FLOAT_EQ(dx.at(0, 0, 0, 0), 1.f);
  EXPECT_FLOAT_EQ(dx.at(0, 1, 1, 1), 2.f);
}

TEST(FlattenTest, RoundTripsShape) {
  Flatten flatten;
  Rng rng(9);
  const Tensor x = Tensor::Randn({3, 2, 4, 4}, rng);
  const Tensor y = flatten.Forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{3, 32}));
  const Tensor dx = flatten.Backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
}

// ---------------------------------------------------------------- relu

TEST(ReLUTest, ForwardClampsNegatives) {
  ReLU relu;
  const Tensor x = Tensor::FromVector({1, 4}, {-1, 0, 2, -3});
  const Tensor y = relu.Forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.f);
  EXPECT_FLOAT_EQ(y[1], 0.f);
  EXPECT_FLOAT_EQ(y[2], 2.f);
  EXPECT_FLOAT_EQ(y[3], 0.f);
}

TEST(ReLUTest, BackwardMasksGradient) {
  ReLU relu;
  relu.Forward(Tensor::FromVector({1, 3}, {-1, 1, 2}));
  const Tensor dx = relu.Backward(Tensor::FromVector({1, 3}, {7, 7, 7}));
  EXPECT_FLOAT_EQ(dx[0], 0.f);
  EXPECT_FLOAT_EQ(dx[1], 7.f);
  EXPECT_FLOAT_EQ(dx[2], 7.f);
}

TEST(ReLUTest, GradientsMatchFiniteDifferences) {
  Rng rng(10);
  ReLU relu;
  // Keep activations away from the kink.
  Tensor input = Tensor::Randn({4, 6}, rng, 0.f, 5.f);
  CheckModuleGradients(relu, input, rng);
}

// ---------------------------------------------------------------- batchnorm

TEST(BatchNormTest, NormalizesBatchInTrainingMode) {
  BatchNorm bn(3);
  Rng rng(11);
  const Tensor x = Tensor::Randn({64, 3}, rng, 5.f, 2.f);
  const Tensor y = bn.Forward(x);
  for (int64_t c = 0; c < 3; ++c) {
    double sum = 0, sq = 0;
    for (int64_t i = 0; i < 64; ++i) {
      sum += y.at(i, c);
      sq += double(y.at(i, c)) * y.at(i, c);
    }
    const double mean = sum / 64;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(sq / 64 - mean * mean, 1.0, 1e-3);
  }
}

TEST(BatchNormTest, RunningStatsConvergeToDataMoments) {
  BatchNorm bn(2, /*momentum=*/0.5f);
  Rng rng(12);
  for (int step = 0; step < 50; ++step) {
    const Tensor x = Tensor::Randn({256, 2}, rng, 3.f, 2.f);
    bn.Forward(x);
  }
  EXPECT_NEAR(bn.running_mean()[0], 3.f, 0.3f);
  EXPECT_NEAR(bn.running_var()[0], 4.f, 0.6f);
}

TEST(BatchNormTest, EvalModeUsesRunningStats) {
  BatchNorm bn(1);
  Rng rng(13);
  for (int step = 0; step < 100; ++step) {
    bn.Forward(Tensor::Randn({128, 1}, rng, 10.f, 1.f));
  }
  bn.SetTraining(false);
  const Tensor x = Tensor::Full({4, 1}, 10.f);
  const Tensor y = bn.Forward(x);
  // Input at the running mean must normalize to ~0.
  EXPECT_NEAR(y[0], 0.f, 0.2f);
}

TEST(BatchNormTest, BuffersAreNotTrainable) {
  BatchNorm bn(4);
  const auto params = bn.Parameters();
  ASSERT_EQ(params.size(), 4u);
  EXPECT_TRUE(params[0]->trainable);   // gamma
  EXPECT_TRUE(params[1]->trainable);   // beta
  EXPECT_FALSE(params[2]->trainable);  // running_mean
  EXPECT_FALSE(params[3]->trainable);  // running_var
}

TEST(BatchNormTest, GradientsMatchFiniteDifferences2d) {
  Rng rng(14);
  BatchNorm bn(3);
  const Tensor input = Tensor::Randn({8, 3}, rng, 1.f, 2.f);
  GradCheckOptions options;
  options.epsilon = 1e-2f;
  options.rel_tolerance = 8e-2;
  options.abs_tolerance = 2e-2;
  CheckModuleGradients(bn, input, rng, options);
}

TEST(BatchNormTest, GradientsMatchFiniteDifferences4d) {
  Rng rng(15);
  BatchNorm bn(2);
  const Tensor input = Tensor::Randn({3, 2, 4, 4}, rng, 0.f, 2.f);
  GradCheckOptions options;
  options.epsilon = 1e-2f;
  options.rel_tolerance = 8e-2;
  options.abs_tolerance = 2e-2;
  CheckModuleGradients(bn, input, rng, options);
}

// ---------------------------------------------------------------- loss

TEST(LossTest, UniformLogitsGiveLogK) {
  const Tensor logits = Tensor::Zeros({4, 10});
  const LossResult result = SoftmaxCrossEntropy(logits, {0, 1, 2, 3});
  EXPECT_NEAR(result.loss, std::log(10.0), 1e-5);
}

TEST(LossTest, CorrectCountsTopOne) {
  const Tensor logits = Tensor::FromVector({2, 3},
                                           {10, 0, 0,
                                            0, 0, 10});
  const LossResult result = SoftmaxCrossEntropy(logits, {0, 0});
  EXPECT_EQ(result.correct, 1);
}

TEST(LossTest, GradientSumsToZeroPerRow) {
  Rng rng(16);
  const Tensor logits = Tensor::Randn({5, 7}, rng);
  const LossResult result = SoftmaxCrossEntropy(logits, {0, 1, 2, 3, 4});
  for (int64_t i = 0; i < 5; ++i) {
    double sum = 0;
    for (int64_t j = 0; j < 7; ++j) sum += result.grad_logits.at(i, j);
    EXPECT_NEAR(sum, 0.0, 1e-6);  // (p - onehot) sums to zero
  }
}

TEST(LossTest, GradientMatchesFiniteDifference) {
  Rng rng(17);
  Tensor logits = Tensor::Randn({3, 4}, rng);
  const std::vector<int> labels = {1, 3, 0};
  const LossResult analytic = SoftmaxCrossEntropy(logits, labels);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + eps;
    const double plus = SoftmaxCrossEntropy(logits, labels).loss;
    logits[i] = saved - eps;
    const double minus = SoftmaxCrossEntropy(logits, labels).loss;
    logits[i] = saved;
    EXPECT_NEAR(analytic.grad_logits[i], (plus - minus) / (2 * eps), 1e-3);
  }
}

// ---------------------------------------------------------------- optimizer

TEST(SgdTest, VanillaStepMatchesFormula) {
  Rng rng(18);
  Linear layer(1, 1, rng);
  auto params = layer.Parameters();
  params[0]->value = Tensor::FromVector({1, 1}, {2.f});
  params[0]->grad = Tensor::FromVector({1, 1}, {0.5f});
  params[1]->value = Tensor::FromVector({1}, {0.f});
  params[1]->grad = Tensor::FromVector({1}, {0.f});
  SgdOptimizer opt(layer, /*lr=*/0.1f, /*momentum=*/0.f);
  opt.Step();
  EXPECT_FLOAT_EQ(params[0]->value[0], 2.f - 0.1f * 0.5f);
}

TEST(SgdTest, MomentumAccumulates) {
  Rng rng(19);
  Linear layer(1, 1, rng);
  auto params = layer.Parameters();
  params[0]->value = Tensor::FromVector({1, 1}, {0.f});
  params[1]->value = Tensor::FromVector({1}, {0.f});
  SgdOptimizer opt(layer, 1.f, /*momentum=*/0.9f);
  // Constant gradient 1: v1 = 1, w1 = -1; v2 = 1.9, w2 = -2.9.
  params[0]->grad = Tensor::FromVector({1, 1}, {1.f});
  params[1]->grad = Tensor::FromVector({1}, {0.f});
  opt.Step();
  EXPECT_FLOAT_EQ(params[0]->value[0], -1.f);
  params[0]->grad = Tensor::FromVector({1, 1}, {1.f});
  opt.Step();
  EXPECT_FLOAT_EQ(params[0]->value[0], -2.9f);
}

TEST(SgdTest, WeightDecayAddsL2Gradient) {
  Rng rng(20);
  Linear layer(1, 1, rng);
  auto params = layer.Parameters();
  params[0]->value = Tensor::FromVector({1, 1}, {10.f});
  params[0]->grad = Tensor::FromVector({1, 1}, {0.f});
  params[1]->value = Tensor::FromVector({1}, {0.f});
  params[1]->grad = Tensor::FromVector({1}, {0.f});
  SgdOptimizer opt(layer, 0.1f, 0.f, /*weight_decay=*/0.01f);
  opt.Step();
  EXPECT_FLOAT_EQ(params[0]->value[0], 10.f - 0.1f * 0.01f * 10.f);
}

TEST(SgdTest, ResetMomentumClearsVelocity) {
  Rng rng(21);
  Linear layer(1, 1, rng);
  auto params = layer.Parameters();
  params[0]->value = Tensor::FromVector({1, 1}, {0.f});
  params[1]->value = Tensor::FromVector({1}, {0.f});
  params[1]->grad = Tensor::FromVector({1}, {0.f});
  SgdOptimizer opt(layer, 1.f, 0.9f);
  params[0]->grad = Tensor::FromVector({1, 1}, {1.f});
  opt.Step();
  opt.ResetMomentum();
  params[0]->grad = Tensor::FromVector({1, 1}, {1.f});
  opt.Step();
  // Without reset this would be -2.9; with reset it is -1 - 1 = -2.
  EXPECT_FLOAT_EQ(params[0]->value[0], -2.f);
}

TEST(SgdTest, SkipsBuffers) {
  BatchNorm bn(2);
  SgdOptimizer opt(bn, 0.1f);
  const Tensor mean_before = bn.running_mean();
  Rng rng(22);
  bn.Forward(Tensor::Randn({16, 2}, rng));
  bn.Backward(Tensor::Ones({16, 2}));
  const Tensor mean_mid = bn.running_mean();  // updated by Forward
  opt.Step();
  // Step must not touch the buffers further.
  for (int64_t i = 0; i < 2; ++i) {
    EXPECT_FLOAT_EQ(bn.running_mean()[i], mean_mid[i]);
  }
}

// ---------------------------------------------------------------- composite

TEST(SequentialTest, ChainsForwardAndBackward) {
  Rng rng(23);
  Sequential model;
  model.Emplace<Linear>(4, 8, rng);
  model.Emplace<ReLU>();
  model.Emplace<Linear>(8, 3, rng);
  const Tensor x = Tensor::Randn({2, 4}, rng);
  const Tensor y = model.Forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 3}));
  const Tensor dx = model.Backward(Tensor::Ones({2, 3}));
  EXPECT_EQ(dx.shape(), x.shape());
  EXPECT_EQ(model.Parameters().size(), 4u);
  EXPECT_EQ(model.size(), 3);
}

TEST(SequentialTest, GradientsMatchFiniteDifferences) {
  Rng rng(24);
  Sequential model;
  model.Emplace<Linear>(6, 5, rng);
  model.Emplace<ReLU>();
  model.Emplace<Linear>(5, 2, rng);
  const Tensor input = Tensor::Randn({3, 6}, rng);
  CheckModuleGradients(model, input, rng);
}

TEST(SequentialTest, SetTrainingPropagates) {
  Rng rng(25);
  Sequential model;
  auto* bn = model.Emplace<BatchNorm>(4);
  model.SetTraining(false);
  EXPECT_FALSE(bn->training());
  model.SetTraining(true);
  EXPECT_TRUE(bn->training());
}

TEST(ResidualBlockTest, IdentityShortcutShapes) {
  Rng rng(26);
  ResidualBlock block(8, 8, 1, rng);
  const Tensor x = Tensor::Randn({2, 8, 6, 6}, rng);
  const Tensor y = block.Forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  // No projection: 2 convs + 2 BNs -> 2*2 + 2*4 = 12 parameters.
  EXPECT_EQ(block.Parameters().size(), 12u);
}

TEST(ResidualBlockTest, ProjectionShortcutShapes) {
  Rng rng(27);
  ResidualBlock block(4, 8, 2, rng);
  const Tensor x = Tensor::Randn({2, 4, 8, 8}, rng);
  const Tensor y = block.Forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 8, 4, 4}));
  // Adds projection conv (2) + BN (4).
  EXPECT_EQ(block.Parameters().size(), 18u);
}

TEST(ResidualBlockTest, GradientsMatchFiniteDifferences) {
  Rng rng(28);
  ResidualBlock block(3, 3, 1, rng);
  const Tensor input = Tensor::Randn({2, 3, 5, 5}, rng, 0.f, 2.f);
  GradCheckOptions options;
  options.epsilon = 1e-2f;
  options.rel_tolerance = 1e-1;
  options.abs_tolerance = 3e-2;
  options.max_failure_fraction = 0.12;  // BN+ReLU kink corruption
  CheckModuleGradients(block, input, rng, options);
}

TEST(ResidualBlockTest, ProjectionGradients) {
  Rng rng(29);
  ResidualBlock block(2, 4, 2, rng);
  const Tensor input = Tensor::Randn({2, 2, 6, 6}, rng, 0.f, 2.f);
  GradCheckOptions options;
  options.epsilon = 1e-2f;
  options.rel_tolerance = 1e-1;
  options.abs_tolerance = 3e-2;
  options.max_failure_fraction = 0.12;  // BN+ReLU kink corruption
  CheckModuleGradients(block, input, rng, options);
}


TEST(MaxPool2dTest, TruncatesNonDivisibleInput) {
  MaxPool2d pool(2);
  Rng rng(30);
  const Tensor x = Tensor::Randn({1, 1, 5, 5}, rng);
  const Tensor y = pool.Forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{1, 1, 2, 2}));
  const Tensor dx = pool.Backward(Tensor::Ones(y.shape()));
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(BatchNormTest, EvalModeBackwardIsLinearScaling) {
  BatchNorm bn(2);
  Rng rng(31);
  // Warm up running stats, then freeze.
  for (int i = 0; i < 20; ++i) bn.Forward(Tensor::Randn({32, 2}, rng));
  bn.SetTraining(false);
  const Tensor input = Tensor::Randn({4, 2}, rng);
  CheckModuleGradients(bn, input, rng);
}

TEST(SequentialTest, ConvPoolLinearGradients) {
  Rng rng(32);
  Sequential model;
  model.Emplace<Conv2d>(1, 2, 3, rng, 1, 1);
  model.Emplace<ReLU>();
  model.Emplace<MaxPool2d>(2);
  model.Emplace<Flatten>();
  model.Emplace<Linear>(2 * 3 * 3, 4, rng);
  const Tensor input = Tensor::Randn({2, 1, 6, 6}, rng, 0.f, 3.f);
  GradCheckOptions options;
  options.max_failure_fraction = 0.05;  // ReLU/pool kinks
  CheckModuleGradients(model, input, rng, options);
}

}  // namespace
}  // namespace niid
