#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "grad_check.h"
#include "nn/loss.h"
#include "nn/models/factory.h"
#include "nn/optimizer.h"
#include "nn/parameters.h"
#include "util/rng.h"

namespace niid {
namespace {

ModelSpec ImageSpec(const std::string& name, int channels = 1, int hw = 28) {
  ModelSpec spec;
  spec.name = name;
  spec.input_channels = channels;
  spec.input_height = hw;
  spec.input_width = hw;
  spec.num_classes = 10;
  return spec;
}

// ---------------------------------------------------------------- shapes

TEST(SimpleCnnTest, OutputShapeMnist) {
  Rng rng(1);
  auto model = CreateModel(ImageSpec("simple-cnn"), rng);
  const Tensor x = Tensor::Randn({4, 1, 28, 28}, rng);
  EXPECT_EQ(model->Forward(x).shape(), (std::vector<int64_t>{4, 10}));
}

TEST(SimpleCnnTest, OutputShapeCifar) {
  Rng rng(2);
  auto model = CreateModel(ImageSpec("simple-cnn", 3, 32), rng);
  const Tensor x = Tensor::Randn({2, 3, 32, 32}, rng);
  EXPECT_EQ(model->Forward(x).shape(), (std::vector<int64_t>{2, 10}));
}

TEST(SimpleCnnTest, ParameterCountMatchesLeNetArithmetic) {
  // conv1: 6*(1*25)+6; conv2: 16*(6*25)+16; fc1: 120*256+120;
  // fc2: 84*120+84; fc3: 10*84+10  (28x28 input -> 4x4x16 = 256 flat).
  Rng rng(3);
  auto model = CreateModel(ImageSpec("simple-cnn"), rng);
  const int64_t expected = (6 * 25 + 6) + (16 * 150 + 16) +
                           (120 * 256 + 120) + (84 * 120 + 84) +
                           (10 * 84 + 10);
  EXPECT_EQ(TrainableSize(*model), expected);
  EXPECT_EQ(StateSize(*model), expected);  // no buffers in the CNN
}

TEST(TabularMlpTest, OutputShapeAndParameterCount) {
  Rng rng(4);
  ModelSpec spec;
  spec.name = "mlp";
  spec.input_features = 54;
  spec.num_classes = 2;
  auto model = CreateModel(spec, rng);
  const Tensor x = Tensor::Randn({5, 54}, rng);
  EXPECT_EQ(model->Forward(x).shape(), (std::vector<int64_t>{5, 2}));
  const int64_t expected = (32 * 54 + 32) + (16 * 32 + 16) + (8 * 16 + 8) +
                           (2 * 8 + 2);
  EXPECT_EQ(TrainableSize(*model), expected);
}

TEST(Vgg9Test, OutputShape) {
  Rng rng(5);
  auto model = CreateModel(ImageSpec("vgg9", 3, 32), rng);
  const Tensor x = Tensor::Randn({2, 3, 32, 32}, rng);
  EXPECT_EQ(model->Forward(x).shape(), (std::vector<int64_t>{2, 10}));
}

TEST(Vgg9Test, HasNineWeightLayers) {
  Rng rng(6);
  auto model = CreateModel(ImageSpec("vgg9", 3, 32), rng);
  // 9 weighted layers (6 conv + 3 linear), each with weight + bias.
  EXPECT_EQ(model->Parameters().size(), 18u);
}

TEST(ResNetTest, OutputShapeAndBuffers) {
  Rng rng(7);
  ModelSpec spec = ImageSpec("resnet", 3, 32);
  spec.resnet_blocks_per_stage = 1;
  auto model = CreateModel(spec, rng);
  const Tensor x = Tensor::Randn({2, 3, 32, 32}, rng);
  EXPECT_EQ(model->Forward(x).shape(), (std::vector<int64_t>{2, 10}));
  // BatchNorm layers mean state > trainable.
  EXPECT_GT(StateSize(*model), TrainableSize(*model));
}

TEST(ResNetTest, DepthKnobAddsParameters) {
  Rng rng(8);
  ModelSpec spec8 = ImageSpec("resnet", 3, 32);
  spec8.resnet_blocks_per_stage = 1;
  ModelSpec spec14 = spec8;
  spec14.resnet_blocks_per_stage = 2;
  auto model8 = CreateModel(spec8, rng);
  auto model14 = CreateModel(spec14, rng);
  EXPECT_GT(TrainableSize(*model14), TrainableSize(*model8));
}

TEST(FactoryTest, UnknownNameAborts) {
  Rng rng(9);
  ModelSpec spec;
  spec.name = "transformer";
  EXPECT_DEATH(CreateModel(spec, rng), "unknown model name");
}

TEST(FactoryTest, FactoryClosureReproducesArchitecture) {
  ModelSpec spec = ImageSpec("simple-cnn");
  const ModelFactory factory = MakeModelFactory(spec);
  Rng rng1(10), rng2(10);
  auto a = factory(rng1);
  auto b = factory(rng2);
  EXPECT_EQ(FlattenState(*a), FlattenState(*b));  // same seed, same init
}

TEST(FactoryTest, DifferentSeedsDifferentInit) {
  const ModelFactory factory = MakeModelFactory(ImageSpec("simple-cnn"));
  Rng rng1(10), rng2(11);
  auto a = factory(rng1);
  auto b = factory(rng2);
  EXPECT_NE(FlattenState(*a), FlattenState(*b));
}

// ---------------------------------------------------------------- state

TEST(ParametersTest, FlattenLoadRoundTrip) {
  Rng rng(11);
  auto model = CreateModel(ImageSpec("resnet", 3, 16), rng);
  StateVector state = FlattenState(*model);
  // Mutate, reload, verify.
  for (float& v : state) v += 1.f;
  LoadState(*model, state);
  EXPECT_EQ(FlattenState(*model), state);
}

TEST(ParametersTest, LayoutCoversStateExactly) {
  Rng rng(12);
  auto model = CreateModel(ImageSpec("resnet", 1, 16), rng);
  const auto layout = StateLayout(*model);
  int64_t covered = 0;
  int64_t expected_offset = 0;
  bool has_buffer = false;
  for (const StateSegment& seg : layout) {
    EXPECT_EQ(seg.offset, expected_offset);
    expected_offset += seg.size;
    covered += seg.size;
    has_buffer = has_buffer || !seg.trainable;
  }
  EXPECT_EQ(covered, StateSize(*model));
  EXPECT_TRUE(has_buffer);
}

TEST(ParametersTest, GradStateZeroAtBuffers) {
  Rng rng(13);
  auto model = CreateModel(ImageSpec("resnet", 1, 16), rng);
  // Populate gradients.
  const Tensor x = Tensor::Randn({2, 1, 16, 16}, rng);
  const Tensor out = model->Forward(x);
  model->Backward(Tensor::Ones(out.shape()));
  const StateVector grads = GradState(*model);
  for (const StateSegment& seg : StateLayout(*model)) {
    if (seg.trainable) continue;
    for (int64_t i = seg.offset; i < seg.offset + seg.size; ++i) {
      EXPECT_EQ(grads[i], 0.f);
    }
  }
}

TEST(ParametersTest, AxpyToGradsSkipsBuffers) {
  Rng rng(14);
  auto model = CreateModel(ImageSpec("resnet", 1, 16), rng);
  ZeroGrads(*model);
  const StateVector ones(StateSize(*model), 1.f);
  AxpyToGrads(*model, 2.f, ones);
  for (Parameter* p : model->Parameters()) {
    if (p->trainable) {
      EXPECT_EQ(p->grad[0], 2.f) << p->name;
    }
  }
  // Buffers have no grad semantics; GradState must still be zero there.
  const StateVector grads = GradState(*model);
  for (const StateSegment& seg : StateLayout(*model)) {
    if (!seg.trainable) {
      EXPECT_EQ(grads[seg.offset], 0.f);
    }
  }
}

TEST(ParametersTest, VectorHelpers) {
  StateVector a = {1.f, 2.f, 3.f};
  const StateVector b = {1.f, 1.f, 1.f};
  Axpy(a, 2.f, b);
  EXPECT_EQ(a, (StateVector{3.f, 4.f, 5.f}));
  Scale(a, 0.5f);
  EXPECT_EQ(a, (StateVector{1.5f, 2.f, 2.5f}));
  const StateVector d = Subtract(a, b);
  EXPECT_EQ(d, (StateVector{0.5f, 1.f, 1.5f}));
  EXPECT_NEAR(Norm({3.f, 4.f}), 5.0, 1e-12);
}

// ---------------------------------------------------------------- learning

// Every model must be able to overfit a tiny two-class problem — a strong
// end-to-end check of the forward/backward plumbing.
class ModelLearning : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelLearning, OverfitsTinyProblem) {
  const std::string name = GetParam();
  Rng rng(42);
  ModelSpec spec;
  spec.num_classes = 2;
  if (name == "mlp") {
    spec.name = "mlp";
    spec.input_features = 8;
  } else {
    spec = ImageSpec(name, 1, 16);
    spec.num_classes = 2;
  }
  auto model = CreateModel(spec, rng);

  // Two well-separated patterns.
  const int64_t n = 16;
  Tensor x = spec.input_features > 0
                 ? Tensor::Randn({n, spec.input_features}, rng, 0.f, 0.1f)
                 : Tensor::Randn({n, 1, 16, 16}, rng, 0.f, 0.1f);
  std::vector<int> y(n);
  const int64_t row = x.numel() / n;
  for (int64_t i = 0; i < n; ++i) {
    y[i] = static_cast<int>(i % 2);
    for (int64_t j = 0; j < row; ++j) {
      x[i * row + j] += (y[i] == 0 ? 0.5f : -0.5f);
    }
  }

  SgdOptimizer opt(*model, name == "mlp" ? 0.1f : 0.05f, 0.9f);
  double first_loss = 0, last_loss = 0;
  for (int step = 0; step < 40; ++step) {
    ZeroGrads(*model);
    const Tensor logits = model->Forward(x);
    const LossResult loss = SoftmaxCrossEntropy(logits, y);
    model->Backward(loss.grad_logits);
    opt.Step();
    if (step == 0) first_loss = loss.loss;
    last_loss = loss.loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.5)
      << name << ": loss did not halve (" << first_loss << " -> "
      << last_loss << ")";
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelLearning,
                         ::testing::Values("simple-cnn", "mlp", "vgg9",
                                           "resnet"));

}  // namespace
}  // namespace niid
