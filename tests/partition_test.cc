#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <tuple>

#include "data/fcube.h"
#include "data/femnist.h"
#include "data/synthetic.h"
#include "partition/feature_skew.h"
#include "partition/label_skew.h"
#include "partition/partition.h"
#include "partition/quantity_skew.h"
#include "partition/report.h"

namespace niid {
namespace {

// A balanced 10-class label vector.
std::vector<int> BalancedLabels(int per_class, int classes = 10) {
  std::vector<int> labels;
  for (int c = 0; c < classes; ++c) {
    labels.insert(labels.end(), per_class, c);
  }
  return labels;
}

// Verifies indices form a valid partition: within range and disjoint.
void ExpectDisjointCoverage(const std::vector<std::vector<int64_t>>& parts,
                            int64_t total, bool expect_complete = true) {
  std::set<int64_t> seen;
  int64_t count = 0;
  for (const auto& part : parts) {
    for (int64_t idx : part) {
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, total);
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
      ++count;
    }
  }
  if (expect_complete) {
    EXPECT_EQ(count, total);
  }
}

// ---------------------------------------------------------------- homo

TEST(HomogeneousTest, EqualSizesAndCoverage) {
  Rng rng(1);
  const auto parts = HomogeneousSplit(1003, 10, rng);
  ExpectDisjointCoverage(parts, 1003);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(parts[i].size(), 100u);
  }
  EXPECT_EQ(parts[9].size(), 103u);  // remainder goes to the last party
}

TEST(HomogeneousTest, SinglePartyGetsEverything) {
  Rng rng(2);
  const auto parts = HomogeneousSplit(50, 1, rng);
  EXPECT_EQ(parts[0].size(), 50u);
}

// ---------------------------------------------------------------- #C=k

class LabelQuantityParam
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LabelQuantityParam, EachPartyHasExactlyKLabels) {
  const auto [num_parties, k] = GetParam();
  Rng rng(3);
  const std::vector<int> labels = BalancedLabels(100);
  const auto parts = LabelQuantitySplit(labels, 10, num_parties, k, rng);
  ASSERT_EQ(static_cast<int>(parts.size()), num_parties);
  ExpectDisjointCoverage(parts, labels.size(), /*expect_complete=*/false);
  for (const auto& part : parts) {
    std::set<int> distinct;
    for (int64_t idx : part) distinct.insert(labels[idx]);
    EXPECT_LE(static_cast<int>(distinct.size()), k);
    EXPECT_GE(static_cast<int>(distinct.size()), 1);
    EXPECT_FALSE(part.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LabelQuantityParam,
    ::testing::Values(std::make_tuple(10, 1), std::make_tuple(10, 2),
                      std::make_tuple(10, 3), std::make_tuple(5, 2),
                      std::make_tuple(20, 1), std::make_tuple(10, 10)));

TEST(LabelQuantityTest, SingleLabelCoversAllClassesWhenPartiesMatch) {
  // With N == K and #C=1, party i gets label i (mod K): full coverage.
  Rng rng(4);
  const std::vector<int> labels = BalancedLabels(50);
  const auto parts = LabelQuantitySplit(labels, 10, 10, 1, rng);
  ExpectDisjointCoverage(parts, labels.size());  // nothing dropped
  for (int party = 0; party < 10; ++party) {
    for (int64_t idx : parts[party]) {
      EXPECT_EQ(labels[idx], party % 10);
    }
  }
}

TEST(LabelQuantityTest, FullLabelSetEqualsHomogeneousCoverage) {
  Rng rng(5);
  const std::vector<int> labels = BalancedLabels(30);
  const auto parts = LabelQuantitySplit(labels, 10, 10, 10, rng);
  ExpectDisjointCoverage(parts, labels.size());
  for (const auto& part : parts) {
    std::set<int> distinct;
    for (int64_t idx : part) distinct.insert(labels[idx]);
    EXPECT_EQ(distinct.size(), 10u);
  }
}

// ---------------------------------------------------------------- Dir label

TEST(LabelDirichletTest, CoverageAndMinSize) {
  Rng rng(6);
  const std::vector<int> labels = BalancedLabels(100);
  const auto parts = LabelDirichletSplit(labels, 10, 10, 0.5, 8, rng);
  ExpectDisjointCoverage(parts, labels.size());
  for (const auto& part : parts) {
    EXPECT_GE(part.size(), 8u);
  }
}

class DirichletBetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(DirichletBetaSweep, ValidPartitionForAllBetas) {
  Rng rng(7);
  const std::vector<int> labels = BalancedLabels(60);
  const auto parts =
      LabelDirichletSplit(labels, 10, 8, GetParam(), 1, rng);
  ExpectDisjointCoverage(parts, labels.size());
}

INSTANTIATE_TEST_SUITE_P(Betas, DirichletBetaSweep,
                         ::testing::Values(0.05, 0.1, 0.5, 1.0, 5.0, 100.0));

// Smaller beta must produce greater label skew (measured by TV distance).
TEST(LabelDirichletTest, SmallerBetaMoreSkewed) {
  Dataset d;
  d.num_classes = 10;
  d.labels = BalancedLabels(100);
  d.features = Tensor::Zeros({static_cast<int64_t>(d.labels.size()), 2});

  auto tv_for_beta = [&](double beta) {
    PartitionConfig config;
    config.strategy = PartitionStrategy::kLabelDirichlet;
    config.num_parties = 10;
    config.beta = beta;
    config.seed = 11;
    const Partition partition = MakePartition(d, config);
    return BuildPartitionReport(d, partition).mean_label_tv_distance;
  };
  EXPECT_GT(tv_for_beta(0.1), tv_for_beta(10.0));
}

// ---------------------------------------------------------------- quantity

TEST(QuantityDirichletTest, CoverageAndSizeVariation) {
  Rng rng(8);
  const auto parts = QuantityDirichletSplit(1000, 10, 0.5, 8, rng);
  ExpectDisjointCoverage(parts, 1000);
  size_t min_size = parts[0].size(), max_size = parts[0].size();
  for (const auto& part : parts) {
    min_size = std::min(min_size, part.size());
    max_size = std::max(max_size, part.size());
  }
  EXPECT_GE(min_size, 8u);
  EXPECT_GT(max_size, min_size);  // sizes genuinely vary
}

TEST(QuantityDirichletTest, LargeBetaApproachesEqualSizes) {
  Rng rng(9);
  const auto parts = QuantityDirichletSplit(1000, 10, 10000.0, 1, rng);
  for (const auto& part : parts) {
    EXPECT_NEAR(static_cast<double>(part.size()), 100.0, 15.0);
  }
}

// ---------------------------------------------------------------- fcube

TEST(FcubeSplitTest, FourPartiesSymmetricOctants) {
  const FederatedDataset fd = MakeFcube({.train_size = 800, .test_size = 100});
  const auto parts = FcubeOctantSplit(fd.train, 4);
  ExpectDisjointCoverage(parts, fd.train.size());
  // Each party owns exactly one symmetric octant pair.
  for (int party = 0; party < 4; ++party) {
    std::set<int> octants;
    for (int64_t idx : parts[party]) {
      octants.insert(FcubeOctant(fd.train.features[idx * 3],
                                 fd.train.features[idx * 3 + 1],
                                 fd.train.features[idx * 3 + 2]));
    }
    ASSERT_EQ(octants.size(), 2u) << "party " << party;
    const int a = *octants.begin();
    const int b = *octants.rbegin();
    EXPECT_EQ(a + b, 7) << "octants must be point-symmetric";
  }
}

TEST(FcubeSplitTest, LabelsBalancedPerParty) {
  const FederatedDataset fd =
      MakeFcube({.train_size = 2000, .test_size = 100});
  const auto parts = FcubeOctantSplit(fd.train, 4);
  for (const auto& part : parts) {
    int64_t zeros = 0;
    for (int64_t idx : part) zeros += (fd.train.labels[idx] == 0);
    const double fraction = static_cast<double>(zeros) / part.size();
    EXPECT_NEAR(fraction, 0.5, 0.1);  // feature skew, not label skew
  }
}

TEST(FcubeSplitDeathTest, RequiresFourParties) {
  const FederatedDataset fd = MakeFcube({.train_size = 100, .test_size = 10});
  EXPECT_DEATH(FcubeOctantSplit(fd.train, 10), "4 parties");
}

// ---------------------------------------------------------------- groups

TEST(GroupSplitTest, WritersNeverStraddleParties) {
  FemnistConfig config;
  config.num_writers = 30;
  config.train_size = 600;
  config.test_size = 50;
  const FederatedDataset fd = MakeFemnist(config);
  Rng rng(10);
  const auto parts = GroupSplit(fd.train, 10, rng);
  ExpectDisjointCoverage(parts, fd.train.size());
  std::map<int, int> writer_to_party;
  for (int party = 0; party < 10; ++party) {
    for (int64_t idx : parts[party]) {
      const int writer = fd.train.groups[idx];
      auto [it, inserted] = writer_to_party.emplace(writer, party);
      EXPECT_EQ(it->second, party)
          << "writer " << writer << " split across parties";
    }
  }
}

TEST(GroupSplitDeathTest, RequiresGroups) {
  Dataset d;
  d.num_classes = 2;
  d.features = Tensor::Zeros({10, 2});
  d.labels.assign(10, 0);
  Rng rng(11);
  EXPECT_DEATH(GroupSplit(d, 2, rng), "groups");
}

// ---------------------------------------------------------------- dispatch

TEST(ParseStrategyTest, AllNamesRoundTrip) {
  EXPECT_EQ(*ParseStrategy("homo"), PartitionStrategy::kHomogeneous);
  EXPECT_EQ(*ParseStrategy("iid"), PartitionStrategy::kHomogeneous);
  EXPECT_EQ(*ParseStrategy("label-quantity"),
            PartitionStrategy::kLabelQuantity);
  EXPECT_EQ(*ParseStrategy("label-dir"), PartitionStrategy::kLabelDirichlet);
  EXPECT_EQ(*ParseStrategy("noise"), PartitionStrategy::kNoise);
  EXPECT_EQ(*ParseStrategy("synthetic"), PartitionStrategy::kSynthetic);
  EXPECT_EQ(*ParseStrategy("real-world"), PartitionStrategy::kRealWorld);
  EXPECT_EQ(*ParseStrategy("quantity-dir"),
            PartitionStrategy::kQuantityDirichlet);
  EXPECT_FALSE(ParseStrategy("bogus").ok());
}

TEST(StrategyLabelTest, MatchesPaperNotation) {
  EXPECT_EQ(StrategyLabel(PartitionStrategy::kLabelQuantity, 2, 0, 0),
            "#C=2");
  EXPECT_EQ(StrategyLabel(PartitionStrategy::kLabelDirichlet, 0, 0.5, 0),
            "p~Dir(0.5)");
  EXPECT_EQ(StrategyLabel(PartitionStrategy::kQuantityDirichlet, 0, 0.5, 0),
            "q~Dir(0.5)");
  EXPECT_EQ(StrategyLabel(PartitionStrategy::kNoise, 0, 0, 0.1),
            "x~Gau(0.1)");
  EXPECT_EQ(StrategyLabel(PartitionStrategy::kHomogeneous, 0, 0, 0), "homo");
}

TEST(MakePartitionTest, DispatchesEveryStrategy) {
  SyntheticImageConfig image_config;
  image_config.train_size = 300;
  image_config.test_size = 50;
  image_config.height = 8;
  image_config.width = 8;
  const Dataset train = MakeSyntheticImages(image_config).train;

  for (const auto strategy :
       {PartitionStrategy::kHomogeneous, PartitionStrategy::kLabelQuantity,
        PartitionStrategy::kLabelDirichlet, PartitionStrategy::kNoise,
        PartitionStrategy::kQuantityDirichlet}) {
    PartitionConfig config;
    config.strategy = strategy;
    config.num_parties = 5;
    config.min_samples_per_party = 1;
    config.seed = 13;
    const Partition partition = MakePartition(train, config);
    EXPECT_EQ(partition.num_parties(), 5) << config.Label();
    EXPECT_GT(partition.total_samples(), 0) << config.Label();
  }
}

TEST(MakePartitionTest, DeterministicForSameSeed) {
  SyntheticImageConfig image_config;
  image_config.train_size = 200;
  image_config.test_size = 20;
  image_config.height = 8;
  image_config.width = 8;
  const Dataset train = MakeSyntheticImages(image_config).train;
  PartitionConfig config;
  config.strategy = PartitionStrategy::kLabelDirichlet;
  config.num_parties = 4;
  config.min_samples_per_party = 1;
  config.seed = 99;
  const Partition a = MakePartition(train, config);
  const Partition b = MakePartition(train, config);
  EXPECT_EQ(a.client_indices, b.client_indices);
}

TEST(MaterializeTest, NoiseGrowsWithPartyIndex) {
  Dataset train;
  train.num_classes = 2;
  train.features = Tensor::Zeros({1000, 20});
  train.labels.assign(1000, 0);

  PartitionConfig config;
  config.strategy = PartitionStrategy::kNoise;
  config.num_parties = 10;
  config.noise_sigma = 0.5;
  config.seed = 17;
  const Partition partition = MakePartition(train, config);

  auto variance_of_party = [&](int party) {
    Rng rng(100 + party);
    const Dataset local =
        MaterializeClientDataset(train, partition, party, rng);
    double sq = 0;
    for (int64_t i = 0; i < local.features.numel(); ++i) {
      sq += double(local.features[i]) * local.features[i];
    }
    return sq / local.features.numel();
  };
  const double v_first = variance_of_party(0);
  const double v_last = variance_of_party(9);
  // Party 1 gets variance sigma/N = 0.05; party 10 gets sigma = 0.5.
  EXPECT_NEAR(v_first, 0.05, 0.02);
  EXPECT_NEAR(v_last, 0.5, 0.1);
  EXPECT_GT(v_last, v_first * 3);
}

TEST(MaterializeTest, NonNoiseStrategiesCopyVerbatim) {
  Dataset train;
  train.num_classes = 2;
  train.features = Tensor::Ones({100, 4});
  train.labels.assign(100, 1);
  PartitionConfig config;
  config.strategy = PartitionStrategy::kHomogeneous;
  config.num_parties = 4;
  config.seed = 19;
  const Partition partition = MakePartition(train, config);
  Rng rng(1);
  const Dataset local = MaterializeClientDataset(train, partition, 2, rng);
  for (int64_t i = 0; i < local.features.numel(); ++i) {
    EXPECT_EQ(local.features[i], 1.f);
  }
}

// ---------------------------------------------------------------- report

TEST(ReportTest, CountsAndTvDistance) {
  Dataset train;
  train.num_classes = 2;
  train.labels = {0, 0, 1, 1};
  train.features = Tensor::Zeros({4, 1});

  Partition partition;
  partition.config.num_parties = 2;
  partition.client_indices = {{0, 1}, {2, 3}};  // pure label split
  const PartitionReport report = BuildPartitionReport(train, partition);
  EXPECT_EQ(report.counts[0][0], 2);
  EXPECT_EQ(report.counts[0][1], 0);
  EXPECT_EQ(report.counts[1][1], 2);
  EXPECT_EQ(report.party_sizes, (std::vector<int64_t>{2, 2}));
  EXPECT_DOUBLE_EQ(report.mean_labels_per_party, 1.0);
  // Each party's distribution is (1,0) vs global (0.5,0.5): TV = 0.5.
  EXPECT_DOUBLE_EQ(report.mean_label_tv_distance, 0.5);
  EXPECT_DOUBLE_EQ(report.size_imbalance, 1.0);
}

TEST(ReportTest, IidPartitionHasLowTv) {
  Dataset train;
  train.num_classes = 2;
  train.labels = {0, 1, 0, 1};
  train.features = Tensor::Zeros({4, 1});
  Partition partition;
  partition.config.num_parties = 2;
  partition.client_indices = {{0, 1}, {2, 3}};
  const PartitionReport report = BuildPartitionReport(train, partition);
  EXPECT_DOUBLE_EQ(report.mean_label_tv_distance, 0.0);
  EXPECT_DOUBLE_EQ(report.mean_labels_per_party, 2.0);
}

TEST(ReportTest, PrintMatrixMentionsParties) {
  Dataset train;
  train.num_classes = 2;
  train.labels = {0, 1};
  train.features = Tensor::Zeros({2, 1});
  Partition partition;
  partition.config.num_parties = 1;
  partition.client_indices = {{0, 1}};
  std::ostringstream out;
  PrintPartitionMatrix(BuildPartitionReport(train, partition), out);
  EXPECT_NE(out.str().find("P0"), std::string::npos);
  EXPECT_NE(out.str().find("class 1"), std::string::npos);
}


TEST(ConceptShiftTest, ZeroProbabilityIsNoOp) {
  Dataset train;
  train.num_classes = 4;
  train.labels = {0, 1, 2, 3, 0, 1, 2, 3};
  train.features = Tensor::Zeros({8, 2});
  PartitionConfig config;
  config.strategy = PartitionStrategy::kHomogeneous;
  config.num_parties = 2;
  config.seed = 60;
  const Partition partition = MakePartition(train, config);
  Rng rng(61);
  const Dataset local = MaterializeClientDataset(train, partition, 1, rng);
  for (size_t i = 0; i < local.labels.size(); ++i) {
    EXPECT_EQ(local.labels[i],
              train.labels[partition.client_indices[1][i]]);
  }
}

TEST(ConceptShiftTest, FlipFractionScalesWithParty) {
  Dataset train;
  train.num_classes = 2;
  train.labels.assign(4000, 0);  // all class 0: any flip is observable
  train.features = Tensor::Zeros({4000, 1});
  PartitionConfig config;
  config.strategy = PartitionStrategy::kHomogeneous;
  config.num_parties = 4;
  config.label_flip_prob = 0.4;  // party i flips with prob 0.4*(i+1)/4
  config.seed = 62;
  const Partition partition = MakePartition(train, config);
  double previous_fraction = -1.0;
  for (int party = 0; party < 4; ++party) {
    Rng rng(63 + party);
    const Dataset local =
        MaterializeClientDataset(train, partition, party, rng);
    int64_t flipped = 0;
    for (int label : local.labels) flipped += (label != 0);
    const double fraction =
        static_cast<double>(flipped) / local.labels.size();
    const double expected = 0.4 * (party + 1) / 4.0;
    EXPECT_NEAR(fraction, expected, 0.05) << "party " << party;
    EXPECT_GT(fraction, previous_fraction);
    previous_fraction = fraction;
  }
}

TEST(ConceptShiftTest, FlippedLabelsStayValidAndDiffer) {
  Dataset train;
  train.num_classes = 5;
  train.labels.assign(1000, 2);
  train.features = Tensor::Zeros({1000, 1});
  PartitionConfig config;
  config.strategy = PartitionStrategy::kHomogeneous;
  config.num_parties = 1;
  config.label_flip_prob = 1.0;  // party 1 of 1: always flip
  config.seed = 64;
  const Partition partition = MakePartition(train, config);
  Rng rng(65);
  const Dataset local = MaterializeClientDataset(train, partition, 0, rng);
  for (int label : local.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 5);
    EXPECT_NE(label, 2);  // a flip never lands on the original class
  }
}

}  // namespace
}  // namespace niid
