// Property-based sweeps: every (algorithm x partition strategy) cell of the
// benchmark grid must run end to end and uphold basic invariants — finite
// global state, accuracies in [0, 1], conserved sample counts. These are the
// "no cell of Table 3 can crash" guarantees.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <tuple>

#include "core/runner.h"
#include "fl/sampling.h"
#include "partition/report.h"

namespace niid {
namespace {

bool AllFinite(const StateVector& v) {
  for (float x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

// ------------------------------------------------- algorithm x partition

struct GridParam {
  std::string algorithm;
  PartitionStrategy strategy;
};

std::string GridName(const ::testing::TestParamInfo<GridParam>& info) {
  std::string name = info.param.algorithm + "_";
  name += StrategyLabel(info.param.strategy, 2, 0.5, 0.1);
  std::string sanitized;
  for (char c : name) {
    sanitized += (std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return sanitized;
}

class AlgorithmPartitionGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(AlgorithmPartitionGrid, RunsAndStaysFinite) {
  const GridParam& param = GetParam();
  ExperimentConfig config;
  config.dataset = "covtype";
  config.catalog.size_factor = 0.0005;
  config.catalog.min_train_size = 200;
  config.catalog.min_test_size = 80;
  config.catalog.max_tabular_features = 54;
  config.algorithm = param.algorithm;
  config.partition.strategy = param.strategy;
  config.partition.num_parties = 4;
  config.partition.labels_per_party = 1;
  config.partition.min_samples_per_party = 2;
  config.rounds = 3;
  config.local.local_epochs = 2;
  config.local.batch_size = 16;
  config.seed = 21;

  Dataset test;
  auto server = BuildServerForTrial(config, 0, &test);
  LocalTrainOptions local = config.local;
  local.learning_rate = ResolveLearningRate(config);
  for (int round = 0; round < config.rounds; ++round) {
    server->RunRound(local);
    ASSERT_TRUE(AllFinite(server->global_state()))
        << param.algorithm << " diverged to NaN/inf at round " << round;
  }
  const EvalResult eval = server->EvaluateGlobal(test);
  EXPECT_GE(eval.accuracy, 0.0);
  EXPECT_LE(eval.accuracy, 1.0);
  EXPECT_GE(eval.loss, 0.0);
}

std::vector<GridParam> MakeGrid() {
  std::vector<GridParam> grid;
  for (const std::string algorithm :
       {"fedavg", "fedprox", "scaffold", "fednova"}) {
    for (const PartitionStrategy strategy :
         {PartitionStrategy::kHomogeneous, PartitionStrategy::kLabelQuantity,
          PartitionStrategy::kLabelDirichlet, PartitionStrategy::kNoise,
          PartitionStrategy::kQuantityDirichlet}) {
      grid.push_back({algorithm, strategy});
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Cells, AlgorithmPartitionGrid,
                         ::testing::ValuesIn(MakeGrid()), GridName);

// ------------------------------------------------- partition invariants

struct PartitionParam {
  PartitionStrategy strategy;
  int num_parties;
  double beta;
  int labels_per_party;
};

class PartitionInvariants
    : public ::testing::TestWithParam<PartitionParam> {};

TEST_P(PartitionInvariants, DisjointValidIndices) {
  const PartitionParam& param = GetParam();
  ExperimentConfig base;
  base.catalog.size_factor = 0.001;
  base.catalog.min_train_size = 300;
  base.catalog.min_test_size = 50;
  auto fd = MakeCatalogDataset("fmnist", base.catalog);
  ASSERT_TRUE(fd.ok());

  PartitionConfig config;
  config.strategy = param.strategy;
  config.num_parties = param.num_parties;
  config.beta = param.beta;
  config.labels_per_party = param.labels_per_party;
  config.min_samples_per_party = 1;
  config.seed = 31;
  const Partition partition = MakePartition(fd->train, config);

  EXPECT_EQ(partition.num_parties(), param.num_parties);
  std::set<int64_t> seen;
  for (const auto& indices : partition.client_indices) {
    for (int64_t idx : indices) {
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, fd->train.size());
      EXPECT_TRUE(seen.insert(idx).second);
    }
  }
  EXPECT_LE(static_cast<int64_t>(seen.size()), fd->train.size());
  // Everything except #C=k (which may drop unowned labels) is complete.
  if (param.strategy != PartitionStrategy::kLabelQuantity) {
    EXPECT_EQ(static_cast<int64_t>(seen.size()), fd->train.size());
  }
  // The report is consistent with the partition.
  const PartitionReport report = BuildPartitionReport(fd->train, partition);
  int64_t total = 0;
  for (int64_t size : report.party_sizes) total += size;
  EXPECT_EQ(total, static_cast<int64_t>(seen.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionInvariants,
    ::testing::Values(
        PartitionParam{PartitionStrategy::kHomogeneous, 10, 0.5, 2},
        PartitionParam{PartitionStrategy::kHomogeneous, 3, 0.5, 2},
        PartitionParam{PartitionStrategy::kLabelDirichlet, 10, 0.1, 2},
        PartitionParam{PartitionStrategy::kLabelDirichlet, 10, 5.0, 2},
        PartitionParam{PartitionStrategy::kLabelDirichlet, 100, 0.5, 2},
        PartitionParam{PartitionStrategy::kLabelQuantity, 10, 0.5, 1},
        PartitionParam{PartitionStrategy::kLabelQuantity, 10, 0.5, 3},
        PartitionParam{PartitionStrategy::kLabelQuantity, 15, 0.5, 2},
        PartitionParam{PartitionStrategy::kQuantityDirichlet, 10, 0.5, 2},
        PartitionParam{PartitionStrategy::kQuantityDirichlet, 5, 2.0, 2},
        PartitionParam{PartitionStrategy::kNoise, 8, 0.5, 2}));

// ------------------------------------------------- skew ordering property

// Dirichlet label skew must be monotone in beta: smaller beta gives a
// larger average TV distance from the global label distribution.
class BetaMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(BetaMonotonicity, TvDistanceDecreasesWithBeta) {
  CatalogOptions catalog;
  catalog.size_factor = 0.001;
  catalog.min_train_size = 500;
  catalog.min_test_size = 50;
  auto fd = MakeCatalogDataset("mnist", catalog);
  ASSERT_TRUE(fd.ok());

  auto tv = [&](double beta) {
    PartitionConfig config;
    config.strategy = PartitionStrategy::kLabelDirichlet;
    config.num_parties = 10;
    config.beta = beta;
    config.min_samples_per_party = 1;
    config.seed = 100 + GetParam();  // different seeds per instantiation
    const Partition partition = MakePartition(fd->train, config);
    return BuildPartitionReport(fd->train, partition)
        .mean_label_tv_distance;
  };
  EXPECT_GT(tv(0.1), tv(100.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BetaMonotonicity, ::testing::Values(1, 2, 3));

// ------------------------------------------------- aggregation conservation

// If every client returns the same delta, every algorithm must apply exactly
// that delta (weights sum to 1) — regardless of sample counts.
class AggregationConservation
    : public ::testing::TestWithParam<std::string> {};

TEST_P(AggregationConservation, UnanimousDeltaIsAppliedExactly) {
  auto algorithm = CreateAlgorithm(GetParam(), AlgorithmConfig{});
  ASSERT_TRUE(algorithm.ok());
  (*algorithm)->Initialize(3, 4);
  StateVector global = {1.f, 2.f, 3.f, 4.f};
  const std::vector<StateSegment> layout = {{0, 4, true}};
  std::vector<LocalUpdate> updates;
  for (int i = 0; i < 3; ++i) {
    LocalUpdate update;
    update.client_id = i;
    update.num_samples = 100 * (i + 1);  // heterogeneous sizes
    update.delta.assign(4, 0.5f);
    update.tau = 7;  // homogeneous steps
    update.delta_c.assign(4, 0.f);
    updates.push_back(update);
  }
  (*algorithm)->Aggregate(global, updates, layout);
  EXPECT_NEAR(global[0], 0.5f, 1e-5f);
  EXPECT_NEAR(global[3], 3.5f, 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(All, AggregationConservation,
                         ::testing::Values("fedavg", "fedprox", "scaffold",
                                           "fednova"));

// ------------------------------------------------- party sampling

// Structural invariants over a sweep of federation sizes and fractions: the
// sample is non-empty, within range, duplicate-free, and never larger than
// the federation.
TEST(SamplingPropertyTest, SamplesAreValidSubsetsAcrossTheGrid) {
  Rng rng(7);
  for (int num_clients : {1, 2, 3, 10, 97}) {
    for (double fraction : {1e-9, 0.1, 0.33, 0.5, 0.999, 1.0}) {
      const std::vector<int> parties =
          SampleParties(rng, num_clients, fraction);
      EXPECT_GE(parties.size(), 1u);
      EXPECT_LE(parties.size(), static_cast<size_t>(num_clients));
      std::set<int> unique(parties.begin(), parties.end());
      EXPECT_EQ(unique.size(), parties.size())
          << "duplicate party at n=" << num_clients << " C=" << fraction;
      for (int p : parties) {
        EXPECT_GE(p, 0);
        EXPECT_LT(p, num_clients);
      }
      if (fraction >= 1.0) {
        EXPECT_EQ(parties.size(), static_cast<size_t>(num_clients));
      }
    }
  }
}

TEST(SamplingPropertyTest, SingleClientFederationAlwaysSamplesTheClient) {
  Rng rng(7);
  for (double fraction : {0.01, 0.5, 1.0}) {
    EXPECT_EQ(SampleParties(rng, 1, fraction), std::vector<int>{0});
  }
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(SamplingDeathTest, RejectsDegenerateArguments) {
  Rng rng(7);
  EXPECT_DEATH(SampleParties(rng, 0, 0.5), "");
  EXPECT_DEATH(SampleParties(rng, -3, 0.5), "");
  EXPECT_DEATH(SampleParties(rng, 10, 0.0), "");
  EXPECT_DEATH(SampleParties(rng, 10, -0.2), "");
  EXPECT_DEATH(SampleParties(rng, 10, 1.5), "");
  // NaN fails every ordered comparison, so the guards must catch it too.
  EXPECT_DEATH(SampleParties(rng, 10, std::nan("")), "");
  EXPECT_DEATH(
      SamplePartiesSkewAware(rng, std::vector<std::vector<int64_t>>{}, 0.5),
      "");
  const std::vector<std::vector<int64_t>> empty_histograms = {{}, {}};
  EXPECT_DEATH(SamplePartiesSkewAware(rng, empty_histograms, 0.5), "");
}
#endif

}  // namespace
}  // namespace niid
