// Tests for the robust aggregation rules (fl/robust.h): coordinate-wise
// median, trimmed mean, and norm clipping. The load-bearing property is the
// determinism contract — Apply must be bit-identical for any thread pool
// (null, 1, or N workers), compared here with ==, never with tolerances.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "fl/client.h"
#include "fl/robust.h"
#include "nn/parameters.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace niid {
namespace {

LocalUpdate MakeUpdate(int id, int64_t samples, int64_t tau,
                       std::vector<float> delta,
                       std::vector<float> delta_c = {}) {
  LocalUpdate update;
  update.client_id = id;
  update.num_samples = samples;
  update.tau = tau;
  update.average_loss = 0.25 * id;
  update.delta = std::move(delta);
  update.delta_c = std::move(delta_c);
  return update;
}

std::unique_ptr<RobustAggregator> MakeAggregator(AggregatorKind kind,
                                                 double trim_fraction = 0.1,
                                                 double clip_norm = 1.0) {
  RobustConfig config;
  config.aggregator = kind;
  config.trim_fraction = trim_fraction;
  config.clip_norm = clip_norm;
  auto aggregator_or = CreateRobustAggregator(config);
  EXPECT_TRUE(aggregator_or.ok());
  return std::move(*aggregator_or);
}

// ----------------------------------------------------------------- factory

TEST(RobustFactoryTest, ParseAndNameRoundTrip) {
  for (const AggregatorKind kind :
       {AggregatorKind::kMean, AggregatorKind::kMedian,
        AggregatorKind::kTrimmedMean, AggregatorKind::kNormClip}) {
    const auto parsed = ParseAggregator(AggregatorName(kind));
    ASSERT_TRUE(parsed.ok()) << AggregatorName(kind);
    EXPECT_EQ(static_cast<int>(*parsed), static_cast<int>(kind));
  }
  EXPECT_EQ(ParseAggregator("krum").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RobustFactoryTest, MeanMapsToNoRobustLayer) {
  RobustConfig config;  // defaults: kMean
  EXPECT_FALSE(config.enabled());
  auto aggregator_or = CreateRobustAggregator(config);
  ASSERT_TRUE(aggregator_or.ok());
  EXPECT_EQ(aggregator_or->get(), nullptr);
}

TEST(RobustFactoryTest, RejectsOutOfRangeParameters) {
  RobustConfig trimmed;
  trimmed.aggregator = AggregatorKind::kTrimmedMean;
  trimmed.trim_fraction = 0.5;  // both ends would eat everything
  EXPECT_EQ(CreateRobustAggregator(trimmed).status().code(),
            StatusCode::kInvalidArgument);
  trimmed.trim_fraction = -0.01;
  EXPECT_FALSE(CreateRobustAggregator(trimmed).ok());

  RobustConfig clipped;
  clipped.aggregator = AggregatorKind::kNormClip;
  clipped.clip_norm = 0.0;
  EXPECT_EQ(CreateRobustAggregator(clipped).status().code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------------ median

TEST(MedianTest, OddCountPicksTheMiddleValueCoordinateWise) {
  auto median = MakeAggregator(AggregatorKind::kMedian);
  std::vector<LocalUpdate> updates = {
      MakeUpdate(0, 10, 4, {1.0f, -9.0f, 100.0f}),
      MakeUpdate(1, 20, 2, {2.0f, -8.0f, -100.0f}),
      MakeUpdate(2, 30, 8, {3.0f, 5.0f, 0.5f}),
  };
  const RobustStats stats = median->Apply(updates, /*pool=*/nullptr);
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].delta, (StateVector{2.0f, -8.0f, 0.5f}));
  // Synthetic-update bookkeeping: pooled samples, lower-median tau, the
  // sentinel client id, and a zeroed loss (losses were reduced before Apply).
  EXPECT_EQ(updates[0].client_id, -1);
  EXPECT_EQ(updates[0].num_samples, 60);
  EXPECT_EQ(updates[0].tau, 4);
  EXPECT_EQ(updates[0].average_loss, 0.0);
  EXPECT_EQ(stats.clipped, 0);
  EXPECT_EQ(stats.trimmed, 0);
}

TEST(MedianTest, EvenCountAveragesTheTwoMiddleValues) {
  auto median = MakeAggregator(AggregatorKind::kMedian);
  std::vector<LocalUpdate> updates = {
      MakeUpdate(0, 1, 1, {1.0f}),
      MakeUpdate(1, 1, 1, {2.0f}),
      MakeUpdate(2, 1, 3, {4.0f}),
      MakeUpdate(3, 1, 9, {8.0f}),
  };
  median->Apply(updates, nullptr);
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].delta, (StateVector{3.0f}));
  EXPECT_EQ(updates[0].tau, 1);  // lower median of {1, 1, 3, 9}
}

TEST(MedianTest, IgnoresOneExtremeOutlier) {
  auto median = MakeAggregator(AggregatorKind::kMedian);
  std::vector<LocalUpdate> updates = {
      MakeUpdate(0, 1, 1, {0.10f, 0.10f}),
      MakeUpdate(1, 1, 1, {0.11f, 0.09f}),
      MakeUpdate(2, 1, 1, {-1e6f, 1e6f}),  // sign-flipped blow-up
  };
  median->Apply(updates, nullptr);
  EXPECT_EQ(updates[0].delta, (StateVector{0.10f, 0.10f}));
}

TEST(MedianTest, ControlVariatesReducedAndRescaledBySurvivorCount) {
  auto median = MakeAggregator(AggregatorKind::kMedian);
  std::vector<LocalUpdate> updates = {
      MakeUpdate(0, 1, 1, {1.0f}, {0.1f}),
      MakeUpdate(1, 1, 1, {2.0f}, {0.2f}),
      MakeUpdate(2, 1, 1, {3.0f}, {0.9f}),
  };
  median->Apply(updates, nullptr);
  ASSERT_EQ(updates.size(), 1u);
  // SCAFFOLD divides the summed delta_c by the full party count N; the
  // statistic is pre-scaled by m so c still moves by (m/N) * median.
  EXPECT_EQ(updates[0].delta_c, (StateVector{0.2f * 3.0f}));
}

TEST(MedianTest, SingleUpdatePassesThroughUntouched) {
  auto median = MakeAggregator(AggregatorKind::kMedian);
  std::vector<LocalUpdate> updates = {MakeUpdate(7, 12, 3, {1.0f, 2.0f})};
  const LocalUpdate before = updates[0];
  median->Apply(updates, nullptr);
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].client_id, before.client_id);
  EXPECT_EQ(updates[0].delta, before.delta);
  EXPECT_EQ(updates[0].num_samples, before.num_samples);
}

// ------------------------------------------------------------ trimmed mean

TEST(TrimmedMeanTest, DropsKFromEachEndPerCoordinate) {
  auto trimmed = MakeAggregator(AggregatorKind::kTrimmedMean,
                                /*trim_fraction=*/0.2);
  // m = 5, k = floor(0.2 * 5) = 1: each coordinate drops its min and max.
  std::vector<LocalUpdate> updates = {
      MakeUpdate(0, 1, 1, {1.0f, 50.0f}),  MakeUpdate(1, 1, 1, {2.0f, 2.0f}),
      MakeUpdate(2, 1, 1, {3.0f, 3.0f}),   MakeUpdate(3, 1, 1, {4.0f, 4.0f}),
      MakeUpdate(4, 1, 1, {-90.0f, 5.0f}),
  };
  const RobustStats stats = trimmed->Apply(updates, nullptr);
  ASSERT_EQ(updates.size(), 1u);
  // Coordinate 0 keeps {1, 2, 3}; coordinate 1 keeps {3, 4, 5}.
  EXPECT_EQ(updates[0].delta, (StateVector{2.0f, 4.0f}));
  EXPECT_EQ(stats.trimmed, 2);
}

TEST(TrimmedMeanTest, ZeroTrimCountReducesToUnweightedMean) {
  // m = 3, k = floor(0.1 * 3) = 0: nothing trimmed, plain coordinate mean.
  auto trimmed = MakeAggregator(AggregatorKind::kTrimmedMean,
                                /*trim_fraction=*/0.1);
  std::vector<LocalUpdate> updates = {
      MakeUpdate(0, 1, 1, {3.0f}),
      MakeUpdate(1, 1, 1, {6.0f}),
      MakeUpdate(2, 1, 1, {12.0f}),
  };
  const RobustStats stats = trimmed->Apply(updates, nullptr);
  EXPECT_EQ(updates[0].delta, (StateVector{7.0f}));
  EXPECT_EQ(stats.trimmed, 0);
}

// --------------------------------------------------------------- norm clip

TEST(NormClipTest, RescalesOnlyOversizedUpdates) {
  auto clip = MakeAggregator(AggregatorKind::kNormClip, 0.1, /*clip_norm=*/5.0);
  std::vector<LocalUpdate> updates = {
      MakeUpdate(0, 1, 1, {3.0f, 4.0f}),    // norm 5: on the ball, untouched
      MakeUpdate(1, 1, 1, {30.0f, 40.0f}),  // norm 50: rescaled by 0.1
      MakeUpdate(2, 1, 1, {0.3f, 0.4f}),    // norm 0.5: untouched
  };
  const RobustStats stats = clip->Apply(updates, nullptr);
  ASSERT_EQ(updates.size(), 3u) << "clipping never collapses the set";
  EXPECT_EQ(updates[0].delta, (StateVector{3.0f, 4.0f}));
  EXPECT_EQ(updates[1].delta, (StateVector{3.0f, 4.0f}));
  EXPECT_EQ(updates[2].delta, (StateVector{0.3f, 0.4f}));
  EXPECT_EQ(stats.clipped, 1);
  // Identity survives: clipping keeps per-update weights usable downstream.
  EXPECT_EQ(updates[1].client_id, 1);
  EXPECT_EQ(updates[1].num_samples, 1);
}

TEST(NormClipTest, ClippedDirectionIsPreserved) {
  auto clip = MakeAggregator(AggregatorKind::kNormClip, 0.1, /*clip_norm=*/1.0);
  std::vector<LocalUpdate> updates = {MakeUpdate(0, 1, 1, {-6.0f, 8.0f})};
  clip->Apply(updates, nullptr);
  EXPECT_NEAR(Norm(updates[0].delta), 1.0, 1e-6);
  EXPECT_LT(updates[0].delta[0], 0.0f);
  EXPECT_GT(updates[0].delta[1], 0.0f);
  EXPECT_NEAR(updates[0].delta[1] / -updates[0].delta[0], 8.0 / 6.0, 1e-6);
}

// ------------------------------------------------------- thread invariance

std::vector<LocalUpdate> RandomUpdates(int m, int64_t n, bool control,
                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<LocalUpdate> updates;
  for (int j = 0; j < m; ++j) {
    LocalUpdate update;
    update.client_id = j;
    update.num_samples = 8 + j;
    update.tau = 1 + j % 5;
    update.average_loss = rng.Uniform();
    update.delta.resize(n);
    for (float& v : update.delta) {
      v = static_cast<float>(rng.Normal());
    }
    if (control) {
      update.delta_c.resize(n);
      for (float& v : update.delta_c) {
        v = static_cast<float>(rng.Normal());
      }
    }
    updates.push_back(std::move(update));
  }
  return updates;
}

bool SameUpdates(const std::vector<LocalUpdate>& a,
                 const std::vector<LocalUpdate>& b) {
  if (a.size() != b.size()) return false;
  for (size_t j = 0; j < a.size(); ++j) {
    if (a[j].client_id != b[j].client_id ||
        a[j].num_samples != b[j].num_samples || a[j].tau != b[j].tau ||
        a[j].delta != b[j].delta || a[j].delta_c != b[j].delta_c) {
      return false;
    }
  }
  return true;
}

// The determinism contract: Apply is bit-identical for any pool size. The
// coordinate rules guarantee it via a fixed 64-block work partition, the
// clip rule via disjoint per-update writes.
TEST(RobustThreadInvarianceTest, ApplyBitIdenticalForAnyPoolSize) {
  for (const AggregatorKind kind :
       {AggregatorKind::kMedian, AggregatorKind::kTrimmedMean,
        AggregatorKind::kNormClip}) {
    for (const bool control : {false, true}) {
      for (const int m : {2, 3, 7}) {
        auto serial_aggregator = MakeAggregator(kind, 0.2, 0.5);
        std::vector<LocalUpdate> reference =
            RandomUpdates(m, 1000, control, /*seed=*/91);
        const RobustStats reference_stats =
            serial_aggregator->Apply(reference, /*pool=*/nullptr);
        for (const int threads : {1, 2, 8}) {
          ThreadPool pool(threads);
          auto aggregator = MakeAggregator(kind, 0.2, 0.5);
          std::vector<LocalUpdate> updates =
              RandomUpdates(m, 1000, control, /*seed=*/91);
          const RobustStats stats = aggregator->Apply(updates, &pool);
          EXPECT_TRUE(SameUpdates(updates, reference))
              << AggregatorName(kind) << " m=" << m << " threads=" << threads
              << " control=" << control;
          EXPECT_EQ(stats.clipped, reference_stats.clipped);
          EXPECT_EQ(stats.trimmed, reference_stats.trimmed);
        }
      }
    }
  }
}

// Reusing one aggregator across rounds (as the server does) must match fresh
// construction every round: the scratch buffers are state-free between calls.
TEST(RobustThreadInvarianceTest, ScratchReuseAcrossRoundsIsStateFree) {
  auto reused = MakeAggregator(AggregatorKind::kMedian);
  for (const int m : {7, 3, 5}) {  // shrinking m exercises stale scratch
    auto fresh = MakeAggregator(AggregatorKind::kMedian);
    std::vector<LocalUpdate> a = RandomUpdates(m, 257, true, 7 * m);
    std::vector<LocalUpdate> b = RandomUpdates(m, 257, true, 7 * m);
    reused->Apply(a, nullptr);
    fresh->Apply(b, nullptr);
    EXPECT_TRUE(SameUpdates(a, b)) << "m=" << m;
  }
}

}  // namespace
}  // namespace niid
