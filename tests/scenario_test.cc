// Tests for the scenario engine (fl/scenario.h): seeded, stateless schedules
// for label drift, diurnal availability, and adversarial parties — plus the
// server integration (counters, robust aggregation, checkpoint v4 resume).
// The recurring property: every query is a pure function of
// (seed, round, client[, sample]), so scenario runs replay exactly and stay
// bit-identical across thread counts, shard counts, and the sparse engine.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "fl/algorithm.h"
#include "fl/checkpoint.h"
#include "fl/client.h"
#include "fl/scenario.h"
#include "fl/server.h"
#include "nn/models/factory.h"
#include "partition/lazy_index.h"
#include "partition/partition.h"
#include "util/rng.h"

namespace niid {
namespace {

ScenarioConfig FullScenarioConfig() {
  ScenarioConfig config;
  config.drift_period = 6;
  config.drift_beta = 0.5;
  config.drift_intensity = 0.5;
  config.availability_amplitude = 0.4;
  config.availability_period = 12;
  config.adversary_fraction = 0.25;
  config.attack = AttackKind::kSignFlip;
  config.attack_scale = 2.0;
  config.num_classes = 4;
  config.seed = 77;
  return config;
}

// ----------------------------------------------------------------- parsing

TEST(ScenarioParseTest, ParseAndNameRoundTrip) {
  for (const AttackKind kind :
       {AttackKind::kNone, AttackKind::kLabelFlip, AttackKind::kSignFlip,
        AttackKind::kScale, AttackKind::kNoise}) {
    const auto parsed = ParseAttack(AttackName(kind));
    ASSERT_TRUE(parsed.ok()) << AttackName(kind);
    EXPECT_EQ(static_cast<int>(*parsed), static_cast<int>(kind));
  }
  EXPECT_EQ(ParseAttack("backdoor").status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------- schedule

TEST(ScenarioPlanTest, DisabledPlanIsInert) {
  ScenarioPlan plan(ScenarioConfig{}, /*server_seed=*/5);
  EXPECT_FALSE(plan.enabled());
  EXPECT_EQ(plan.Fingerprint(), 0u);
  for (int round = 0; round < 10; ++round) {
    for (int client = 0; client < 10; ++client) {
      EXPECT_TRUE(plan.Available(round, client));
      EXPECT_EQ(plan.DriftGeneration(round, client), 0);
      EXPECT_FALSE(plan.IsAdversary(client));
    }
  }
  LocalUpdate update;
  update.delta = {1.0f, -2.0f};
  plan.Poison(0, 0, update);
  EXPECT_EQ(update.delta, (StateVector{1.0f, -2.0f}));
}

TEST(ScenarioPlanTest, EveryQueryIsAPureFunctionOfItsCell) {
  const ScenarioConfig config = FullScenarioConfig();
  ScenarioPlan a(config, /*server_seed=*/5);
  ScenarioPlan b(config, /*server_seed=*/5);
  for (int round = 0; round < 20; ++round) {
    for (int client = 0; client < 20; ++client) {
      EXPECT_EQ(a.Available(round, client), b.Available(round, client));
      EXPECT_EQ(a.DriftGeneration(round, client),
                b.DriftGeneration(round, client));
      EXPECT_EQ(a.IsAdversary(client), b.IsAdversary(client));
    }
  }
}

TEST(ScenarioPlanTest, ExplicitSeedDecouplesScheduleFromServerSeed) {
  const ScenarioConfig config = FullScenarioConfig();  // seed = 77
  ScenarioPlan a(config, /*server_seed=*/1);
  ScenarioPlan b(config, /*server_seed=*/999);
  for (int round = 0; round < 10; ++round) {
    for (int client = 0; client < 10; ++client) {
      EXPECT_EQ(a.Available(round, client), b.Available(round, client));
      EXPECT_EQ(a.IsAdversary(client), b.IsAdversary(client));
    }
  }
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(ScenarioPlanTest, DerivedSeedVariesWithServerSeed) {
  ScenarioConfig config = FullScenarioConfig();
  config.seed = 0;  // derive from the server seed
  ScenarioPlan a(config, /*server_seed=*/1);
  ScenarioPlan b(config, /*server_seed=*/2);
  int differing = 0;
  for (int client = 0; client < 200; ++client) {
    if (a.IsAdversary(client) != b.IsAdversary(client)) ++differing;
  }
  EXPECT_GT(differing, 0);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(ScenarioPlanTest, AdversarySetIsFixedAndMatchesTheConfiguredFraction) {
  const ScenarioConfig config = FullScenarioConfig();  // fraction = 0.25
  ScenarioPlan plan(config, /*server_seed=*/5);
  const int population = 4000;
  int adversaries = 0;
  for (int client = 0; client < population; ++client) {
    if (plan.IsAdversary(client)) ++adversaries;
  }
  EXPECT_NEAR(static_cast<double>(adversaries) / population,
              config.adversary_fraction, 0.03);
}

TEST(ScenarioPlanTest, AvailabilityAveragesToOneMinusHalfTheAmplitude) {
  // p_avail = 1 - A * (1 + sin) / 2 averages to 1 - A/2 over a full period.
  ScenarioConfig config;
  config.availability_amplitude = 0.6;
  config.availability_period = 24;
  config.seed = 7;
  ScenarioPlan plan(config, /*server_seed=*/5);
  int64_t available = 0, cells = 0;
  for (int round = 0; round < 240; ++round) {
    for (int client = 0; client < 100; ++client) {
      available += plan.Available(round, client) ? 1 : 0;
      ++cells;
    }
  }
  EXPECT_NEAR(static_cast<double>(available) / static_cast<double>(cells),
              1.0 - config.availability_amplitude / 2.0, 0.02);
}

TEST(ScenarioPlanTest, DriftGenerationAdvancesOncePerPeriodWithPartyPhase) {
  const ScenarioConfig config = FullScenarioConfig();  // period = 6
  ScenarioPlan plan(config, /*server_seed=*/5);
  bool phases_differ = false;
  for (int client = 0; client < 32; ++client) {
    int previous = plan.DriftGeneration(0, client);
    EXPECT_GE(previous, 0);
    EXPECT_LE(previous, 1);  // phase < period, so round 0 is generation 0 or 1
    for (int round = 1; round < 40; ++round) {
      const int generation = plan.DriftGeneration(round, client);
      EXPECT_GE(generation, previous) << "generations never regress";
      EXPECT_LE(generation - previous, 1) << "one boundary per round at most";
      previous = generation;
    }
    // Exactly round / period boundaries pass in 40 rounds (plus the phase).
    EXPECT_NEAR(plan.DriftGeneration(39, client),
                39.0 / config.drift_period, 1.0);
    if (plan.DriftGeneration(3, client) != plan.DriftGeneration(3, 0)) {
      phases_differ = true;
    }
  }
  EXPECT_TRUE(phases_differ) << "per-party phases must spread the boundaries";
}

// ---------------------------------------------------------- label transform

TEST(ScenarioTransformTest, GenerationZeroWithoutFlipIsIdentity) {
  ScenarioPlan plan(FullScenarioConfig(), /*server_seed=*/5);
  for (int label = 0; label < 4; ++label) {
    EXPECT_EQ(plan.TransformLabel(3, /*generation=*/0, /*sample_index=*/9,
                                  label, /*flip=*/false),
              label);
  }
}

TEST(ScenarioTransformTest, FlipIsTheClassicTargetedRelabeling) {
  ScenarioPlan plan(FullScenarioConfig(), /*server_seed=*/5);  // 4 classes
  for (int label = 0; label < 4; ++label) {
    EXPECT_EQ(plan.TransformLabel(3, 0, 9, label, /*flip=*/true), 3 - label);
  }
}

TEST(ScenarioTransformTest, DriftedLabelsAreDeterministicAndInRange) {
  ScenarioConfig config = FullScenarioConfig();
  config.drift_intensity = 1.0;  // every sample re-draws from the new prior
  ScenarioPlan plan(config, /*server_seed=*/5);
  int changed = 0;
  for (int client = 0; client < 8; ++client) {
    for (int64_t sample = 0; sample < 50; ++sample) {
      const int label = static_cast<int>(sample % config.num_classes);
      const int out = plan.TransformLabel(client, /*generation=*/2, sample,
                                          label, false);
      EXPECT_GE(out, 0);
      EXPECT_LT(out, config.num_classes);
      // Epoch stability: the same (client, generation, sample) always lands
      // on the same label, no matter how often training revisits it.
      EXPECT_EQ(out, plan.TransformLabel(client, 2, sample, label, false));
      if (out != label) ++changed;
    }
  }
  EXPECT_GT(changed, 0) << "a fresh Dirichlet prior must move some labels";
}

TEST(ScenarioTransformTest, DriftIntensityZeroLeavesLabelsAlone) {
  ScenarioConfig config = FullScenarioConfig();
  config.drift_intensity = 0.0;
  ScenarioPlan plan(config, /*server_seed=*/5);
  for (int64_t sample = 0; sample < 50; ++sample) {
    EXPECT_EQ(plan.TransformLabel(1, /*generation=*/3, sample, 2, false), 2);
  }
}

TEST(ScenarioTransformTest, NewGenerationRedealsThePrior) {
  ScenarioConfig config = FullScenarioConfig();
  config.drift_intensity = 1.0;
  ScenarioPlan plan(config, /*server_seed=*/5);
  int differing = 0;
  for (int64_t sample = 0; sample < 100; ++sample) {
    if (plan.TransformLabel(1, 1, sample, 0, false) !=
        plan.TransformLabel(1, 2, sample, 0, false)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

// ------------------------------------------------------------------ poison

LocalUpdate PoisonTarget() {
  LocalUpdate update;
  update.delta = {1.0f, -2.0f, 3.0f};
  update.delta_c = {0.5f, 0.25f};
  return update;
}

TEST(ScenarioPoisonTest, SignFlipNegatesAndScalesBothFields) {
  ScenarioConfig config = FullScenarioConfig();  // signflip, scale = 2
  ScenarioPlan plan(config, /*server_seed=*/5);
  LocalUpdate update = PoisonTarget();
  plan.Poison(/*round=*/3, /*client=*/1, update);
  EXPECT_EQ(update.delta, (StateVector{-2.0f, 4.0f, -6.0f}));
  EXPECT_EQ(update.delta_c, (StateVector{-1.0f, -0.5f}));
}

TEST(ScenarioPoisonTest, ScaleBlowsUpWithoutFlippingSigns) {
  ScenarioConfig config = FullScenarioConfig();
  config.attack = AttackKind::kScale;
  config.attack_scale = 10.0;
  ScenarioPlan plan(config, /*server_seed=*/5);
  LocalUpdate update = PoisonTarget();
  plan.Poison(3, 1, update);
  EXPECT_EQ(update.delta, (StateVector{10.0f, -20.0f, 30.0f}));
}

TEST(ScenarioPoisonTest, NoiseIsDeterministicPerRoundAndClient) {
  ScenarioConfig config = FullScenarioConfig();
  config.attack = AttackKind::kNoise;
  config.attack_scale = 0.5;
  ScenarioPlan plan(config, /*server_seed=*/5);
  LocalUpdate a = PoisonTarget(), b = PoisonTarget(), c = PoisonTarget();
  plan.Poison(3, 1, a);
  plan.Poison(3, 1, b);
  plan.Poison(4, 1, c);
  EXPECT_NE(a.delta, PoisonTarget().delta);
  EXPECT_EQ(a.delta, b.delta) << "same cell, same noise";
  EXPECT_NE(a.delta, c.delta) << "new round, fresh noise";
  EXPECT_EQ(a.delta_c, PoisonTarget().delta_c)
      << "noise only perturbs the delta";
}

TEST(ScenarioPoisonTest, LabelFlipDoesNotTouchTheUpdateVector) {
  ScenarioConfig config = FullScenarioConfig();
  config.attack = AttackKind::kLabelFlip;
  ScenarioPlan plan(config, /*server_seed=*/5);
  LocalUpdate update = PoisonTarget();
  plan.Poison(3, 1, update);
  EXPECT_EQ(update.delta, PoisonTarget().delta);
}

// ------------------------------------------------------------- fingerprint

TEST(ScenarioFingerprintTest, SensitiveToEveryScheduleRelevantField) {
  const ScenarioConfig base = FullScenarioConfig();
  const uint64_t fingerprint = ScenarioPlan(base, 5).Fingerprint();
  EXPECT_NE(fingerprint, 0u);
  EXPECT_EQ(ScenarioPlan(base, 5).Fingerprint(), fingerprint);

  auto mutate = [&](auto&& edit) {
    ScenarioConfig changed = base;
    edit(changed);
    return ScenarioPlan(changed, 5).Fingerprint();
  };
  EXPECT_NE(mutate([](ScenarioConfig& c) { c.drift_period = 7; }),
            fingerprint);
  EXPECT_NE(mutate([](ScenarioConfig& c) { c.drift_beta = 0.9; }),
            fingerprint);
  EXPECT_NE(mutate([](ScenarioConfig& c) { c.drift_intensity = 0.9; }),
            fingerprint);
  EXPECT_NE(mutate([](ScenarioConfig& c) { c.availability_amplitude = 0.2; }),
            fingerprint);
  EXPECT_NE(mutate([](ScenarioConfig& c) { c.availability_period = 48; }),
            fingerprint);
  EXPECT_NE(mutate([](ScenarioConfig& c) { c.adversary_fraction = 0.5; }),
            fingerprint);
  EXPECT_NE(mutate([](ScenarioConfig& c) { c.attack = AttackKind::kScale; }),
            fingerprint);
  EXPECT_NE(mutate([](ScenarioConfig& c) { c.attack_scale = 3.0; }),
            fingerprint);
  EXPECT_NE(mutate([](ScenarioConfig& c) { c.num_classes = 10; }),
            fingerprint);
  EXPECT_NE(mutate([](ScenarioConfig& c) { c.seed = 78; }), fingerprint);
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(ScenarioPlanDeathTest, RejectsOutOfRangeConfigs) {
  ScenarioConfig amplitude = FullScenarioConfig();
  amplitude.availability_amplitude = 1.5;
  EXPECT_DEATH(ScenarioPlan(amplitude, 1), "");
  ScenarioConfig fraction = FullScenarioConfig();
  fraction.adversary_fraction = -0.1;
  EXPECT_DEATH(ScenarioPlan(fraction, 1), "");
  ScenarioConfig classes = FullScenarioConfig();
  classes.num_classes = 0;  // drift is on, so the class count is required
  EXPECT_DEATH(ScenarioPlan(classes, 1), "class count");
  ScenarioConfig scale = FullScenarioConfig();
  scale.attack_scale = 0.0;
  EXPECT_DEATH(ScenarioPlan(scale, 1), "");
}
#endif

// --------------------------------------------------------------- federation

ModelSpec ScenarioMlpSpec() {
  ModelSpec spec;
  spec.name = "mlp";
  spec.input_features = 10;
  spec.num_classes = 2;
  return spec;
}

Dataset ScenarioDataset(int64_t n, uint64_t seed) {
  SyntheticTabularConfig config;
  config.num_features = 10;
  config.train_size = n;
  config.test_size = 1;
  config.class_sep = 3.0f;
  config.seed = seed;
  return MakeSyntheticTabular(config).train;
}

std::vector<std::unique_ptr<Client>> ScenarioClients(int num_clients,
                                                     int64_t samples_each) {
  Dataset full = ScenarioDataset(256, /*seed=*/4242);
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < num_clients; ++i) {
    std::vector<int64_t> shard;
    for (int64_t k = 0; k < samples_each; ++k) {
      shard.push_back((static_cast<int64_t>(i) * samples_each + k) %
                      full.size());
    }
    clients.push_back(
        std::make_unique<Client>(i, Subset(full, shard), Rng(100 + i)));
  }
  return clients;
}

std::unique_ptr<FederatedServer> ScenarioServer(const std::string& algorithm,
                                                const ServerConfig& config,
                                                int num_clients = 8,
                                                int64_t samples_each = 32) {
  auto algorithm_or = CreateAlgorithm(algorithm, AlgorithmConfig{});
  return std::make_unique<FederatedServer>(
      MakeModelFactory(ScenarioMlpSpec()),
      ScenarioClients(num_clients, samples_each), std::move(*algorithm_or),
      config);
}

LocalTrainOptions ScenarioOptions() {
  LocalTrainOptions options;
  options.local_epochs = 2;
  options.batch_size = 16;
  options.learning_rate = 0.05f;
  return options;
}

/// An active everything-on scenario over the 2-class synthetic federation.
ServerConfig ActiveScenarioConfig(AggregatorKind aggregator) {
  ServerConfig config;
  config.seed = 5;
  config.scenario.drift_period = 2;
  config.scenario.drift_beta = 0.5;
  config.scenario.drift_intensity = 0.5;
  config.scenario.availability_amplitude = 0.3;
  config.scenario.availability_period = 4;
  config.scenario.adversary_fraction = 0.25;
  config.scenario.attack = AttackKind::kSignFlip;
  config.scenario.attack_scale = 2.0;
  config.scenario.num_classes = 2;
  config.scenario.seed = 31;
  config.robust.aggregator = aggregator;
  config.robust.trim_fraction = 0.2;
  config.robust.clip_norm = 5.0;
  config.min_aggregate_clients = 2;
  return config;
}

struct ScenarioRunResult {
  StateVector state;
  std::vector<int> unavailable, flipped, poisoned, clipped, trimmed,
      aggregated;
  std::vector<double> losses;
};

ScenarioRunResult RunScenarioRounds(const std::string& algorithm,
                                    AggregatorKind aggregator, int threads,
                                    int shards, int rounds) {
  ServerConfig config = ActiveScenarioConfig(aggregator);
  config.num_threads = threads;
  config.num_shards = shards;
  ScenarioRunResult result;
  auto server = ScenarioServer(algorithm, config);
  for (int round = 0; round < rounds; ++round) {
    const RoundStats stats = server->RunRound(ScenarioOptions());
    result.unavailable.push_back(stats.unavailable);
    result.flipped.push_back(stats.flipped);
    result.poisoned.push_back(stats.poisoned);
    result.clipped.push_back(stats.clipped);
    result.trimmed.push_back(stats.trimmed);
    result.aggregated.push_back(stats.aggregated);
    result.losses.push_back(stats.mean_local_loss);
  }
  result.state = server->global_state();
  return result;
}

// The tentpole determinism claim: a full scenario round — drift relabeling,
// availability gating, sign-flipped adversaries, robust aggregation — must
// be bit-identical across num_threads in {1, 2, 8} and across shard counts,
// for every robust rule and algorithm family exercised.
TEST(ScenarioRoundTest, ScenarioRoundsBitIdenticalAcrossThreadsAndShards) {
  for (const std::string algorithm : {"fedavg", "scaffold", "fednova"}) {
    for (const AggregatorKind aggregator :
         {AggregatorKind::kMedian, AggregatorKind::kTrimmedMean,
          AggregatorKind::kNormClip}) {
      const ScenarioRunResult base =
          RunScenarioRounds(algorithm, aggregator, /*threads=*/1,
                            /*shards=*/1, /*rounds=*/4);
      for (const auto& [threads, shards] :
           std::vector<std::pair<int, int>>{{2, 4}, {8, 2}}) {
        const ScenarioRunResult run =
            RunScenarioRounds(algorithm, aggregator, threads, shards, 4);
        const std::string label = algorithm + "/" +
                                  AggregatorName(aggregator) +
                                  " threads=" + std::to_string(threads) +
                                  " shards=" + std::to_string(shards);
        EXPECT_EQ(run.state, base.state) << label;
        EXPECT_EQ(run.unavailable, base.unavailable) << label;
        EXPECT_EQ(run.flipped, base.flipped) << label;
        EXPECT_EQ(run.poisoned, base.poisoned) << label;
        EXPECT_EQ(run.clipped, base.clipped) << label;
        EXPECT_EQ(run.trimmed, base.trimmed) << label;
        EXPECT_EQ(run.aggregated, base.aggregated) << label;
        EXPECT_EQ(run.losses, base.losses) << label;
      }
    }
  }
}

// With the scenario configured but every knob zero and the mean aggregator,
// the layer must be fully transparent: bitwise-identical to a server that
// never heard of scenarios.
TEST(ScenarioRoundTest, ZeroScenarioAndMeanAreBitTransparent) {
  ServerConfig plain;
  plain.seed = 5;
  ServerConfig with_layer = plain;
  with_layer.scenario.seed = 123;  // configured, but nothing is enabled
  with_layer.scenario.num_classes = 2;
  with_layer.robust.trim_fraction = 0.3;  // parameters without a rule
  auto a = ScenarioServer("fedavg", plain);
  auto b = ScenarioServer("fedavg", with_layer);
  for (int round = 0; round < 3; ++round) {
    const RoundStats sa = a->RunRound(ScenarioOptions());
    const RoundStats sb = b->RunRound(ScenarioOptions());
    EXPECT_EQ(sb.unavailable, 0);
    EXPECT_EQ(sb.flipped, 0);
    EXPECT_EQ(sb.poisoned, 0);
    EXPECT_EQ(sb.clipped, 0);
    EXPECT_EQ(sb.trimmed, 0);
    EXPECT_EQ(sa.mean_local_loss, sb.mean_local_loss);
  }
  EXPECT_EQ(a->global_state(), b->global_state());
}

TEST(ScenarioRoundTest, CountersReflectTheConfiguredScenario) {
  // All parties adversarial under labelflip: every sampled party trains on
  // flipped labels and the flipped counter says so; nothing is poisoned
  // (the damage happened during training, not on the wire).
  ServerConfig config;
  config.seed = 5;
  config.scenario.adversary_fraction = 1.0;
  config.scenario.attack = AttackKind::kLabelFlip;
  config.scenario.num_classes = 2;
  config.scenario.seed = 9;
  auto server = ScenarioServer("fedavg", config);
  const RoundStats stats = server->RunRound(ScenarioOptions());
  EXPECT_EQ(stats.flipped, server->num_clients());
  EXPECT_EQ(stats.poisoned, 0);
  EXPECT_EQ(stats.aggregated, server->num_clients());

  // Sign-flip counts as poisoned instead.
  ServerConfig poison_config;
  poison_config.seed = 5;
  poison_config.scenario.adversary_fraction = 1.0;
  poison_config.scenario.attack = AttackKind::kSignFlip;
  poison_config.scenario.seed = 9;
  auto poisoned = ScenarioServer("fedavg", poison_config);
  const RoundStats poison_stats = poisoned->RunRound(ScenarioOptions());
  EXPECT_EQ(poison_stats.poisoned, poisoned->num_clients());
  EXPECT_EQ(poison_stats.flipped, 0);
}

TEST(ScenarioRoundTest, DeepTroughThinsTheRoundButNeverDoubleCounts) {
  ServerConfig config;
  config.seed = 5;
  config.scenario.availability_amplitude = 0.9;
  config.scenario.availability_period = 4;
  config.scenario.seed = 9;
  config.min_aggregate_clients = 1;
  config.max_resample_retries = 2;
  auto server = ScenarioServer("fedavg", config);
  int64_t unavailable = 0;
  for (int round = 0; round < 6; ++round) {
    const RoundStats stats = server->RunRound(ScenarioOptions());
    unavailable += stats.unavailable;
    EXPECT_LE(stats.unavailable + stats.aggregated, server->num_clients())
        << "an unavailable party is attempted exactly once";
  }
  EXPECT_GT(unavailable, 0) << "amplitude 0.9 must gate someone in 6 rounds";
}

// Norm clipping tames a scale attacker without collapsing honest updates:
// the round aggregates everyone, the oversized uploads get rescaled, and the
// model stays finite.
TEST(ScenarioRoundTest, ClippingContainsAScaleAttack) {
  ServerConfig config = ActiveScenarioConfig(AggregatorKind::kNormClip);
  config.scenario.availability_amplitude = 0.0;
  config.scenario.drift_period = 0;
  config.scenario.attack = AttackKind::kScale;
  config.scenario.attack_scale = 1000.0;
  config.robust.clip_norm = 1.0;
  auto server = ScenarioServer("fedavg", config);
  int64_t clipped = 0;
  for (int round = 0; round < 3; ++round) {
    const RoundStats stats = server->RunRound(ScenarioOptions());
    clipped += stats.clipped;
    EXPECT_EQ(stats.aggregated, server->num_clients());
  }
  EXPECT_GT(clipped, 0);
  for (const float v : server->global_state()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

// ------------------------------------------------------------ sparse engine

std::shared_ptr<LazyPartitionIndex> ScenarioSource(int num_parties) {
  PartitionConfig config;
  config.strategy = PartitionStrategy::kHomogeneous;
  config.num_parties = num_parties;
  config.cross_device_samples_per_party = 24;
  config.seed = 17;
  return std::make_shared<LazyPartitionIndex>(ScenarioDataset(256, 4242),
                                              config);
}

ScenarioRunResult RunSparseScenarioRounds(int threads, int shards,
                                          int rounds) {
  ServerConfig config = ActiveScenarioConfig(AggregatorKind::kMedian);
  config.party_stream_seed = 1234;
  config.sample_fraction = 0.5;
  config.num_threads = threads;
  config.num_shards = shards;
  auto algorithm_or = CreateAlgorithm("fedavg", AlgorithmConfig{});
  auto server = std::make_unique<FederatedServer>(
      MakeModelFactory(ScenarioMlpSpec()), ScenarioSource(16),
      std::move(*algorithm_or), config);
  ScenarioRunResult result;
  for (int round = 0; round < rounds; ++round) {
    const RoundStats stats = server->RunRound(ScenarioOptions());
    result.unavailable.push_back(stats.unavailable);
    result.flipped.push_back(stats.flipped);
    result.poisoned.push_back(stats.poisoned);
    result.aggregated.push_back(stats.aggregated);
    result.losses.push_back(stats.mean_local_loss);
  }
  result.state = server->global_state();
  return result;
}

// The sparse 1M-party engine composes with scenarios by construction (drift
// is evaluated at train time, availability per sampled id): the same run
// must be bit-identical across thread and shard counts there too.
TEST(ScenarioSparseTest, SparseScenarioRoundsBitIdenticalAcrossThreads) {
  const ScenarioRunResult base = RunSparseScenarioRounds(/*threads=*/1,
                                                         /*shards=*/1,
                                                         /*rounds=*/4);
  bool anything_happened = false;
  for (size_t round = 0; round < base.unavailable.size(); ++round) {
    if (base.unavailable[round] + base.flipped[round] + base.poisoned[round] >
        0) {
      anything_happened = true;
    }
  }
  EXPECT_TRUE(anything_happened) << "the scenario must actually fire";
  for (const auto& [threads, shards] :
       std::vector<std::pair<int, int>>{{2, 4}, {8, 2}}) {
    const ScenarioRunResult run =
        RunSparseScenarioRounds(threads, shards, /*rounds=*/4);
    EXPECT_EQ(run.state, base.state) << "threads=" << threads;
    EXPECT_EQ(run.unavailable, base.unavailable);
    EXPECT_EQ(run.flipped, base.flipped);
    EXPECT_EQ(run.poisoned, base.poisoned);
    EXPECT_EQ(run.aggregated, base.aggregated);
    EXPECT_EQ(run.losses, base.losses);
  }
}

// -------------------------------------------------------------- checkpoints

std::string ScenarioTestPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// Run k rounds of an actively attacked, robustly aggregated federation,
// checkpoint through the v4 file format, restore into a FRESH server, and
// land bit-identically on an uninterrupted run — the scenario schedule is
// stateless, so the fingerprint alone proves the continuation replays it.
TEST(ScenarioResumeTest, KillAndResumeUnderAttackMatchesUninterruptedRun) {
  const int total_rounds = 5, kill_after = 2;
  for (const AggregatorKind aggregator :
       {AggregatorKind::kMedian, AggregatorKind::kNormClip}) {
    const ServerConfig config = ActiveScenarioConfig(aggregator);
    auto uninterrupted = ScenarioServer("scaffold", config);
    for (int round = 0; round < total_rounds; ++round) {
      uninterrupted->RunRound(ScenarioOptions());
    }

    const std::string path = ScenarioTestPath(
        "scenario_resume_" + AggregatorName(aggregator) + ".bin");
    {
      auto first_process = ScenarioServer("scaffold", config);
      for (int round = 0; round < kill_after; ++round) {
        first_process->RunRound(ScenarioOptions());
      }
      ASSERT_TRUE(first_process->SaveCheckpoint(path).ok());
    }
    auto resumed = ScenarioServer("scaffold", config);
    const Status loaded = resumed->LoadCheckpoint(path);
    ASSERT_TRUE(loaded.ok()) << loaded.ToString();
    for (int round = kill_after; round < total_rounds; ++round) {
      resumed->RunRound(ScenarioOptions());
    }
    EXPECT_EQ(resumed->global_state(), uninterrupted->global_state())
        << AggregatorName(aggregator);
    EXPECT_EQ(resumed->cumulative_upload_floats(),
              uninterrupted->cumulative_upload_floats());
  }
}

TEST(ScenarioResumeTest, ScenarioOrAggregatorMismatchRejectedBeforeMutation) {
  const ServerConfig config = ActiveScenarioConfig(AggregatorKind::kMedian);
  auto source = ScenarioServer("fedavg", config);
  source->RunRound(ScenarioOptions());
  const ServerCheckpoint checkpoint = source->MakeCheckpoint();

  // Same seed and algorithm, different attack: the schedule would diverge.
  ServerConfig other_scenario = config;
  other_scenario.scenario.attack = AttackKind::kScale;
  auto scenario_mismatch = ScenarioServer("fedavg", other_scenario);
  StateVector before = scenario_mismatch->global_state();
  Status status = scenario_mismatch->RestoreCheckpoint(checkpoint);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(scenario_mismatch->global_state(), before);
  EXPECT_EQ(scenario_mismatch->rounds_completed(), 0);

  // Same scenario, different aggregation rule.
  ServerConfig other_rule = config;
  other_rule.robust.aggregator = AggregatorKind::kTrimmedMean;
  auto rule_mismatch = ScenarioServer("fedavg", other_rule);
  before = rule_mismatch->global_state();
  status = rule_mismatch->RestoreCheckpoint(checkpoint);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(rule_mismatch->global_state(), before);

  // A scenario-free server must also refuse a scenario checkpoint.
  ServerConfig plain;
  plain.seed = config.seed;
  plain.min_aggregate_clients = config.min_aggregate_clients;
  auto plain_server = ScenarioServer("fedavg", plain);
  EXPECT_FALSE(plain_server->RestoreCheckpoint(checkpoint).ok());

  // The rejected server is still healthy afterwards.
  plain_server->RunRound(ScenarioOptions());
  EXPECT_EQ(plain_server->rounds_completed(), 1);
}

// v3 back-compat: a file written by the pre-scenario format (no fingerprint,
// no aggregator name) must read back with the scenario-off defaults and
// restore into a scenario-free server, continuing bit-identically.

uint64_t V3Fnv1a(const char* data, size_t size) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

template <typename T>
void V3AppendPod(std::string& out, const T& value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void V3AppendString(std::string& out, const std::string& value) {
  V3AppendPod(out, static_cast<uint64_t>(value.size()));
  out.append(value);
}

void V3AppendFloats(std::string& out, const StateVector& values) {
  V3AppendPod(out, static_cast<uint64_t>(values.size()));
  if (values.empty()) return;
  out.append(reinterpret_cast<const char*>(values.data()),
             values.size() * sizeof(float));
}

void V3AppendRng(std::string& out, const RngState& rng) {
  for (int i = 0; i < 4; ++i) V3AppendPod(out, rng.state[i]);
  V3AppendPod(out, static_cast<uint8_t>(rng.has_cached_normal ? 1 : 0));
  V3AppendPod(out, rng.cached_normal);
}

/// Byte-exact replica of the v3 writer: everything the current writer emits
/// except the scenario fingerprint and aggregator name, under version 3.
void WriteV3File(const ServerCheckpoint& checkpoint,
                 const std::string& path) {
  std::string payload = "NIIDCKPT";
  V3AppendPod(payload, static_cast<uint32_t>(3));
  V3AppendPod(payload, checkpoint.config_seed);
  V3AppendString(payload, checkpoint.algorithm);
  V3AppendString(payload, checkpoint.codec);
  V3AppendPod(payload, static_cast<uint8_t>(checkpoint.error_feedback));
  V3AppendPod(payload, checkpoint.codec_seed);
  V3AppendPod(payload, checkpoint.num_clients);
  V3AppendPod(payload, checkpoint.state_size);
  V3AppendPod(payload, checkpoint.rounds_completed);
  V3AppendPod(payload, checkpoint.cumulative_upload_floats);
  V3AppendPod(payload, checkpoint.cumulative_bytes_uplink);
  V3AppendRng(payload, checkpoint.server_rng);
  V3AppendFloats(payload, checkpoint.global_state);
  V3AppendPod(payload,
              static_cast<uint64_t>(checkpoint.algorithm_state.size()));
  for (const StateVector& vec : checkpoint.algorithm_state) {
    V3AppendFloats(payload, vec);
  }
  V3AppendPod(payload, static_cast<uint64_t>(checkpoint.client_rng.size()));
  for (const RngState& rng : checkpoint.client_rng) V3AppendRng(payload, rng);
  V3AppendPod(payload,
              static_cast<uint64_t>(checkpoint.client_buffers.size()));
  for (const StateVector& vec : checkpoint.client_buffers) {
    V3AppendFloats(payload, vec);
  }
  V3AppendPod(payload,
              static_cast<uint64_t>(checkpoint.client_residuals.size()));
  for (const StateVector& vec : checkpoint.client_residuals) {
    V3AppendFloats(payload, vec);
  }
  V3AppendPod(payload, static_cast<uint8_t>(checkpoint.sparse ? 1 : 0));
  V3AppendPod(payload, static_cast<uint64_t>(checkpoint.party_ids.size()));
  for (const int64_t id : checkpoint.party_ids) V3AppendPod(payload, id);
  V3AppendPod(payload, checkpoint.trial);
  V3AppendPod(payload, static_cast<uint64_t>(0));  // round_accuracy
  V3AppendPod(payload, static_cast<uint64_t>(0));  // round_loss
  V3AppendPod(payload, V3Fnv1a(payload.data(), payload.size()));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(payload.data(), 1, payload.size(), f),
            payload.size());
  std::fclose(f);
}

TEST(ScenarioResumeTest, V3FileReadsBackWithScenarioOffDefaults) {
  ServerConfig config;
  config.seed = 5;
  const int total_rounds = 4, kill_after = 2;
  auto uninterrupted = ScenarioServer("fedavg", config);
  for (int round = 0; round < total_rounds; ++round) {
    uninterrupted->RunRound(ScenarioOptions());
  }

  const std::string path = ScenarioTestPath("scenario_v3_compat.bin");
  {
    auto first_process = ScenarioServer("fedavg", config);
    for (int round = 0; round < kill_after; ++round) {
      first_process->RunRound(ScenarioOptions());
    }
    WriteV3File(first_process->MakeCheckpoint(), path);
  }
  const auto read = ReadCheckpointFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->scenario_fingerprint, 0u);
  EXPECT_EQ(read->aggregator, "mean");

  auto resumed = ScenarioServer("fedavg", config);
  ASSERT_TRUE(resumed->RestoreCheckpoint(*read).ok());
  for (int round = kill_after; round < total_rounds; ++round) {
    resumed->RunRound(ScenarioOptions());
  }
  EXPECT_EQ(resumed->global_state(), uninterrupted->global_state());
}

}  // namespace
}  // namespace niid
