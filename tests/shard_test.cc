// Tests for the sharded reduction tree (fl/shard.h), the sparse party
// engine (LazyPartitionIndex + FederatedServer's sparse constructor), the
// O(k) party sampler, and the v3 sparse checkpoint format.
//
// The load-bearing property throughout: ONE canonical floating-point
// operation schedule, so results are bit-identical across every thread
// count and shard count — compared here with ==, never with tolerances.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "fl/algorithm.h"
#include "fl/checkpoint.h"
#include "fl/client.h"
#include "fl/metrics.h"
#include "fl/server.h"
#include "fl/shard.h"
#include "nn/models/factory.h"
#include "partition/lazy_index.h"
#include "partition/partition.h"
#include "util/rng.h"
#include "util/samplers.h"

namespace niid {
namespace {

std::unique_ptr<FlAlgorithm> MakeAlgo(const std::string& name) {
  auto algorithm_or = CreateAlgorithm(name, AlgorithmConfig{});
  return std::move(*algorithm_or);
}

ModelSpec MlpSpec() {
  ModelSpec spec;
  spec.name = "mlp";
  spec.input_features = 10;
  spec.num_classes = 2;
  return spec;
}

Dataset TabularData(int64_t n, uint64_t seed) {
  SyntheticTabularConfig config;
  config.num_features = 10;
  config.train_size = n;
  config.test_size = 1;
  config.class_sep = 3.0f;
  config.seed = seed;
  return MakeSyntheticTabular(config).train;
}

LocalTrainOptions FastOptions() {
  LocalTrainOptions options;
  options.local_epochs = 1;
  options.batch_size = 16;
  options.learning_rate = 0.05f;
  return options;
}

std::vector<std::unique_ptr<Client>> DenseClients(int num_clients,
                                                  int64_t samples_each) {
  Dataset full = TabularData(256, /*seed=*/4242);
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < num_clients; ++i) {
    std::vector<int64_t> shard;
    for (int64_t k = 0; k < samples_each; ++k) {
      shard.push_back((static_cast<int64_t>(i) * samples_each + k) %
                      full.size());
    }
    clients.push_back(
        std::make_unique<Client>(i, Subset(full, shard), Rng(100 + i)));
  }
  return clients;
}

std::unique_ptr<FederatedServer> DenseServer(const std::string& algorithm,
                                             ServerConfig config,
                                             int num_clients = 8,
                                             int64_t samples_each = 32) {
  auto algorithm_or = CreateAlgorithm(algorithm, AlgorithmConfig{});
  return std::make_unique<FederatedServer>(
      MakeModelFactory(MlpSpec()), DenseClients(num_clients, samples_each),
      std::move(*algorithm_or), config);
}

// ------------------------------------------------- reduction-tree identity

// The core acceptance criterion: for all five algorithms, the sharded
// reduction is bitwise identical across threads {1,2,8} x shards {1,4,16}.
TEST(ShardIdentityTest, AllAlgorithmsBitIdenticalAcrossThreadsAndShards) {
  const std::vector<std::string> algorithms = {
      "fedavg", "fedprox", "scaffold", "fednova", "fedadam"};
  const int kRounds = 3;
  for (const std::string& algorithm : algorithms) {
    ServerConfig base;
    base.seed = 7;
    base.num_threads = 1;
    base.num_shards = 1;
    auto reference = DenseServer(algorithm, base);
    std::vector<RoundStats> reference_stats;
    for (int r = 0; r < kRounds; ++r) {
      reference_stats.push_back(reference->RunRound(FastOptions()));
    }
    for (const int threads : {1, 2, 8}) {
      for (const int shards : {1, 4, 16}) {
        if (threads == 1 && shards == 1) continue;
        ServerConfig config = base;
        config.num_threads = threads;
        config.num_shards = shards;
        auto server = DenseServer(algorithm, config);
        for (int r = 0; r < kRounds; ++r) {
          const RoundStats stats = server->RunRound(FastOptions());
          EXPECT_EQ(stats.mean_local_loss,
                    reference_stats[r].mean_local_loss)
              << algorithm << " t=" << threads << " s=" << shards
              << " round " << r;
        }
        ASSERT_EQ(server->global_state().size(),
                  reference->global_state().size());
        EXPECT_EQ(server->global_state(), reference->global_state())
            << algorithm << " diverged at threads=" << threads
            << " shards=" << shards;
      }
    }
  }
}

// Shard-count invariance must survive the full PR-5/PR-8 plumbing: lossy
// compression with error feedback, fault injection, and quorum re-sampling.
// The quorum bookkeeping (dropped/crashed/rejected/aggregated) is part of
// the contract — a shard-dependent survivor count would poison everything.
TEST(ShardIdentityTest, HoldsUnderCompressionFaultsAndQuorum) {
  for (const CodecKind codec : {CodecKind::kInt8, CodecKind::kRandK}) {
    ServerConfig base;
    base.seed = 11;
    base.num_threads = 1;
    base.num_shards = 1;
    base.compression.codec = codec;
    base.compression.error_feedback = true;
    base.faults.drop_rate = 0.2;
    base.faults.crash_rate = 0.1;
    base.faults.corrupt_rate = 0.1;
    base.min_aggregate_clients = 3;
    base.max_resample_retries = 2;
    base.sample_fraction = 0.75;
    auto reference = DenseServer("fedavg", base, /*num_clients=*/12);
    std::vector<RoundStats> reference_stats;
    for (int r = 0; r < 3; ++r) {
      reference_stats.push_back(reference->RunRound(FastOptions()));
    }
    for (const int threads : {2, 8}) {
      for (const int shards : {4, 16}) {
        ServerConfig config = base;
        config.num_threads = threads;
        config.num_shards = shards;
        auto server = DenseServer("fedavg", config, /*num_clients=*/12);
        for (int r = 0; r < 3; ++r) {
          const RoundStats stats = server->RunRound(FastOptions());
          const RoundStats& want = reference_stats[r];
          EXPECT_EQ(stats.sampled_clients, want.sampled_clients);
          EXPECT_EQ(stats.dropped, want.dropped);
          EXPECT_EQ(stats.crashed, want.crashed);
          EXPECT_EQ(stats.rejected, want.rejected);
          EXPECT_EQ(stats.aggregated, want.aggregated);
          EXPECT_EQ(stats.quorum_met, want.quorum_met);
          EXPECT_EQ(stats.resample_retries, want.resample_retries);
          EXPECT_EQ(stats.mean_local_loss, want.mean_local_loss);
          EXPECT_EQ(stats.bytes_uplink, want.bytes_uplink);
        }
        EXPECT_EQ(server->global_state(), reference->global_state())
            << "codec=" << static_cast<int>(codec) << " threads=" << threads
            << " shards=" << shards;
      }
    }
  }
}

// The reducer itself, driven directly: in-place pairwise combine over m
// updates must agree with an exact serial evaluation of the same canonical
// schedule, for every (m, shards) including non-powers of two.
TEST(ShardReducerTest, MatchesCanonicalScheduleAtEveryWidth) {
  for (const int m : {1, 2, 3, 5, 8, 13}) {
    // Reference: canonical schedule evaluated with shards=1.
    auto make_updates = [m]() {
      std::vector<LocalUpdate> updates(m);
      Rng rng(33);
      for (int j = 0; j < m; ++j) {
        updates[j].num_samples = 1 + j;
        updates[j].delta.resize(7);
        for (float& v : updates[j].delta) {
          v = static_cast<float>(rng.Uniform(-1.0, 1.0));
        }
      }
      return updates;
    };
    std::vector<float> coeffs(m);
    for (int j = 0; j < m; ++j) coeffs[j] = 0.25f + 0.5f / (1 + j);

    std::vector<LocalUpdate> reference_updates = make_updates();
    ShardReducer serial;
    serial.Configure(1, nullptr, m);
    const StateVector reference = serial.ReduceScaled(
        reference_updates, coeffs, ShardReducer::Field::kDelta);
    for (const int shards : {2, 4, 16}) {
      std::vector<LocalUpdate> updates = make_updates();
      ShardReducer reducer;
      reducer.Configure(shards, nullptr, m);
      const StateVector& reduced = reducer.ReduceScaled(
          updates, coeffs, ShardReducer::Field::kDelta);
      EXPECT_EQ(reduced, reference) << "m=" << m << " shards=" << shards;
    }
  }
}

// --------------------------------------------------------- sparse sampler

// SampleWithoutReplacement's sparse rewrite must reproduce the dense
// partial-Fisher-Yates draws bit-for-bit at every (n, k) — the dense
// reference is inlined here as the regression oracle.
TEST(SparseSamplerTest, BitCompatibleWithDensePool) {
  auto dense_reference = [](Rng& rng, int n, int k) {
    std::vector<int> pool(n);
    for (int i = 0; i < n; ++i) pool[i] = i;
    std::vector<int> sample(k);
    for (int i = 0; i < k; ++i) {
      const int j = i + static_cast<int>(rng.UniformInt(n - i));
      std::swap(pool[i], pool[j]);
      sample[i] = pool[i];
    }
    std::sort(sample.begin(), sample.end());
    return sample;
  };
  for (const auto& [n, k] : std::vector<std::pair<int, int>>{
           {1, 1}, {10, 3}, {10, 10}, {100, 10}, {1000, 7}, {4096, 100}}) {
    Rng rng_dense(n * 31 + k);
    Rng rng_sparse(n * 31 + k);
    const std::vector<int> expected = dense_reference(rng_dense, n, k);
    const std::vector<int> actual = SampleWithoutReplacement(rng_sparse, n, k);
    EXPECT_EQ(actual, expected) << "n=" << n << " k=" << k;
    // The generators consumed identical draw sequences.
    EXPECT_EQ(rng_sparse.NextUint64(), rng_dense.NextUint64());
  }
}

// ------------------------------------------------------ lazy partition index

TEST(LazyIndexTest, DisjointHomogeneousMatchesMakePartition) {
  Dataset train = TabularData(203, /*seed=*/9);
  for (const PartitionStrategy strategy :
       {PartitionStrategy::kHomogeneous, PartitionStrategy::kNoise}) {
    PartitionConfig config;
    config.strategy = strategy;
    config.num_parties = 13;
    config.seed = 77;
    const Partition partition = MakePartition(train, config);
    LazyPartitionIndex index(train, config);
    std::vector<int64_t> indices;
    for (int party = 0; party < config.num_parties; ++party) {
      index.PartyIndices(party, indices);
      EXPECT_EQ(indices, partition.client_indices[party]) << "party " << party;
    }
  }
}

TEST(LazyIndexTest, CrossDeviceDerivationIsPureAndBounded) {
  Dataset train = TabularData(240, /*seed=*/10);
  for (const PartitionStrategy strategy :
       {PartitionStrategy::kHomogeneous, PartitionStrategy::kLabelDirichlet,
        PartitionStrategy::kLabelQuantity,
        PartitionStrategy::kQuantityDirichlet}) {
    PartitionConfig config;
    config.strategy = strategy;
    config.num_parties = 100000;  // far more parties than samples
    config.cross_device_samples_per_party = 16;
    config.labels_per_party = 1;
    config.seed = 5;
    LazyPartitionIndex index(train, config);
    std::vector<int64_t> a, b;
    for (const int64_t party : {0L, 1L, 4999L, 99999L}) {
      index.PartyIndices(party, a);
      ASSERT_FALSE(a.empty());
      if (strategy != PartitionStrategy::kQuantityDirichlet) {
        EXPECT_EQ(static_cast<int64_t>(a.size()),
                  config.cross_device_samples_per_party);
      }
      for (const int64_t idx : a) {
        EXPECT_GE(idx, 0);
        EXPECT_LT(idx, train.size());
      }
      // Purity: evaluation order and repetition never change the draw.
      index.PartyIndices(party, b);
      EXPECT_EQ(a, b);
    }
    // #C=1: every party's samples come from a single class.
    if (strategy == PartitionStrategy::kLabelQuantity) {
      index.PartyIndices(123, a);
      for (const int64_t idx : a) {
        EXPECT_EQ(train.labels[idx], train.labels[a[0]]);
      }
    }
    // Distinct parties draw distinct streams.
    index.PartyIndices(1, a);
    index.PartyIndices(2, b);
    EXPECT_NE(a, b);
  }
}

TEST(LazyIndexTest, CrossDeviceMakePartitionUsesTheSameDraws) {
  Dataset train = TabularData(128, /*seed=*/3);
  PartitionConfig config;
  config.strategy = PartitionStrategy::kLabelDirichlet;
  config.num_parties = 25;
  config.cross_device_samples_per_party = 12;
  config.seed = 21;
  const Partition partition = MakePartition(train, config);
  ASSERT_EQ(partition.num_parties(), 25);
  LazyPartitionIndex index(train, config);
  std::vector<int64_t> indices;
  for (int party = 0; party < 25; ++party) {
    index.PartyIndices(party, indices);
    EXPECT_EQ(indices, partition.client_indices[party]);
  }
}

TEST(LazyIndexTest, MaterializeAppliesNoiseAndFlipDeterministically) {
  Dataset train = TabularData(96, /*seed=*/8);
  PartitionConfig config;
  config.strategy = PartitionStrategy::kNoise;
  config.num_parties = 1000;
  config.cross_device_samples_per_party = 8;
  config.noise_sigma = 0.5;
  config.label_flip_prob = 0.9;
  config.seed = 13;
  LazyPartitionIndex index(train, config);
  Dataset first, again, other;
  index.MaterializeParty(777, first);
  index.MaterializeParty(3, other);   // interleave another party
  index.MaterializeParty(777, again);
  EXPECT_EQ(first.labels, again.labels);
  ASSERT_EQ(first.features.numel(), again.features.numel());
  for (int64_t i = 0; i < first.features.numel(); ++i) {
    EXPECT_EQ(first.features.data()[i], again.features.data()[i]);
  }
  // The noise transform actually fired: features differ from the raw subset.
  std::vector<int64_t> indices;
  index.PartyIndices(777, indices);
  Dataset raw = Subset(train, indices);
  bool any_noise = false;
  for (int64_t i = 0; i < raw.features.numel(); ++i) {
    if (raw.features.data()[i] != first.features.data()[i]) any_noise = true;
  }
  EXPECT_TRUE(any_noise);
}

// --------------------------------------------------------- sparse engine

std::shared_ptr<LazyPartitionIndex> SmallSource(int num_parties) {
  PartitionConfig config;
  config.strategy = PartitionStrategy::kHomogeneous;
  config.num_parties = num_parties;
  config.cross_device_samples_per_party = 24;
  config.seed = 17;
  return std::make_shared<LazyPartitionIndex>(TabularData(256, /*seed=*/4242),
                                              config);
}

ServerConfig SparseConfig(uint64_t seed = 5) {
  ServerConfig config;
  config.seed = seed;
  config.party_stream_seed = 1234;
  config.sample_fraction = 0.5;
  return config;
}

// A dense federation whose clients replicate the sparse engine's rng and
// dataset conventions must produce bit-identical rounds: same sampling
// stream, same local draws, same aggregation — the engine changes WHERE
// party state lives, never WHAT it computes.
TEST(SparseEngineTest, MatchesEquivalentDenseFederationBitwise) {
  for (const std::string algorithm : {"fedavg", "scaffold"}) {
    auto source = SmallSource(12);
    ServerConfig config = SparseConfig();
    config.num_threads = 2;
    config.num_shards = 4;
    config.compression.codec = CodecKind::kInt8;
    config.compression.error_feedback = true;

    std::vector<std::unique_ptr<Client>> clients;
    for (int i = 0; i < 12; ++i) {
      auto client = std::make_unique<Client>(
          i, Rng(DeriveStreamSeed(config.party_stream_seed, i)));
      source->MaterializeParty(i, client->mutable_data());
      clients.push_back(std::move(client));
    }
    auto dense = std::make_unique<FederatedServer>(
        MakeModelFactory(MlpSpec()), std::move(clients),
        MakeAlgo(algorithm), config);
    auto sparse = std::make_unique<FederatedServer>(
        MakeModelFactory(MlpSpec()), source,
        MakeAlgo(algorithm), config);
    EXPECT_TRUE(sparse->sparse());
    EXPECT_EQ(sparse->num_clients(), 12);

    LocalTrainOptions options = FastOptions();
    options.keep_local_buffers = false;
    for (int r = 0; r < 3; ++r) {
      const RoundStats dense_stats = dense->RunRound(options);
      const RoundStats sparse_stats = sparse->RunRound(options);
      EXPECT_EQ(sparse_stats.sampled_clients, dense_stats.sampled_clients);
      EXPECT_EQ(sparse_stats.mean_local_loss, dense_stats.mean_local_loss)
          << algorithm << " round " << r;
    }
    EXPECT_EQ(sparse->global_state(), dense->global_state()) << algorithm;
  }
}

// Resume bit-identity at 100k parties: the tentpole's checkpoint criterion.
// Run A goes straight through; run B checkpoints through a real file at the
// midpoint into a FRESH server. Their final states must be bitwise equal,
// and the sparse checkpoint must stay O(sampled), not O(parties).
TEST(SparseEngineTest, ResumeAt100kPartiesIsBitIdentical) {
  constexpr int kParties = 100000;
  ServerConfig config = SparseConfig(29);
  config.sample_fraction = 1e-4;  // 10 parties per round
  config.num_threads = 2;

  auto fresh_server = [&]() {
    return std::make_unique<FederatedServer>(
        MakeModelFactory(MlpSpec()), SmallSource(kParties),
        MakeAlgo("fedavg"), config);
  };

  auto straight = fresh_server();
  for (int r = 0; r < 4; ++r) straight->RunRound(FastOptions());

  auto first_half = fresh_server();
  for (int r = 0; r < 2; ++r) first_half->RunRound(FastOptions());
  const std::string path = ::testing::TempDir() + "/sparse_resume.ckpt";
  ASSERT_TRUE(first_half->SaveCheckpoint(path).ok());

  const StatusOr<ServerCheckpoint> checkpoint = ReadCheckpointFile(path);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();
  EXPECT_TRUE(checkpoint->sparse);
  EXPECT_EQ(checkpoint->num_clients, kParties);
  // Two rounds of ~10 parties each: far, far fewer entries than parties.
  EXPECT_LE(checkpoint->party_ids.size(), 20u);
  EXPECT_GE(checkpoint->party_ids.size(), 1u);
  EXPECT_EQ(checkpoint->party_ids.size(), checkpoint->client_rng.size());

  auto resumed = fresh_server();
  ASSERT_TRUE(resumed->LoadCheckpoint(path).ok());
  EXPECT_EQ(resumed->rounds_completed(), 2);
  for (int r = 0; r < 2; ++r) resumed->RunRound(FastOptions());
  EXPECT_EQ(resumed->global_state(), straight->global_state());
  EXPECT_EQ(resumed->cumulative_upload_floats(),
            straight->cumulative_upload_floats());
  std::remove(path.c_str());
}

// SCAFFOLD's per-party control variates are the hardest durable state: the
// sparse save/load roundtrip must preserve them and the continuation.
TEST(SparseEngineTest, ScaffoldSparseCheckpointRoundTrips) {
  ServerConfig config = SparseConfig(31);
  config.sample_fraction = 0.25;
  auto fresh_server = [&]() {
    return std::make_unique<FederatedServer>(
        MakeModelFactory(MlpSpec()), SmallSource(8000),
        MakeAlgo("scaffold"), config);
  };
  auto straight = fresh_server();
  for (int r = 0; r < 4; ++r) straight->RunRound(FastOptions());

  auto first_half = fresh_server();
  for (int r = 0; r < 2; ++r) first_half->RunRound(FastOptions());
  const std::string path = ::testing::TempDir() + "/scaffold_sparse.ckpt";
  ASSERT_TRUE(first_half->SaveCheckpoint(path).ok());
  auto resumed = fresh_server();
  ASSERT_TRUE(resumed->LoadCheckpoint(path).ok());
  for (int r = 0; r < 2; ++r) resumed->RunRound(FastOptions());
  EXPECT_EQ(resumed->global_state(), straight->global_state());
  std::remove(path.c_str());
}

// Mode mismatches must fail loudly, not restore garbage.
TEST(SparseEngineTest, SparseAndDenseCheckpointsDoNotCrossRestore) {
  ServerConfig config = SparseConfig(33);
  auto sparse = std::make_unique<FederatedServer>(
      MakeModelFactory(MlpSpec()), SmallSource(12),
      MakeAlgo("fedavg"), config);
  sparse->RunRound(FastOptions());
  ServerConfig dense_config = config;
  auto dense = DenseServer("fedavg", dense_config, /*num_clients=*/12);
  const ServerCheckpoint from_sparse = sparse->MakeCheckpoint();
  EXPECT_FALSE(dense->RestoreCheckpoint(from_sparse).ok());
  const ServerCheckpoint from_dense = dense->MakeCheckpoint();
  EXPECT_FALSE(sparse->RestoreCheckpoint(from_dense).ok());
}

}  // namespace
}  // namespace niid
