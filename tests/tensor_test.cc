#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace niid {
namespace {

// ---------------------------------------------------------------- Tensor

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.rank(), 0);
  EXPECT_TRUE(t.empty());
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.f);
}

TEST(TensorTest, FactoryFunctions) {
  EXPECT_EQ(Tensor::Ones({2, 2})[3], 1.f);
  EXPECT_EQ(Tensor::Full({3}, 2.5f)[1], 2.5f);
  const Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(1, 0), 3.f);
}

TEST(TensorTest, RandnStatistics) {
  Rng rng(5);
  const Tensor t = Tensor::Randn({100, 100}, rng, 1.f, 0.5f);
  double sum = 0, sq = 0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    sum += t[i];
    sq += double(t[i]) * t[i];
  }
  const double mean = sum / t.numel();
  EXPECT_NEAR(mean, 1.0, 0.02);
  EXPECT_NEAR(std::sqrt(sq / t.numel() - mean * mean), 0.5, 0.02);
}

TEST(TensorTest, UniformBounds) {
  Rng rng(6);
  const Tensor t = Tensor::Uniform({1000}, rng, -2.f, 3.f);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -2.f);
    EXPECT_LT(t[i], 3.f);
  }
}

TEST(TensorTest, DimSupportsNegativeIndex) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.Reshape({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.f);
  EXPECT_EQ(r.numel(), t.numel());
}

TEST(TensorTest, FourDAccess) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.f;
  EXPECT_EQ(t[t.numel() - 1], 9.f);
}

TEST(TensorTest, RowOperations) {
  Tensor t({3, 4});
  const float row[] = {1, 2, 3, 4};
  t.SetRow(1, row);
  const auto fetched = t.Row(1);
  EXPECT_EQ(fetched, (std::vector<float>{1, 2, 3, 4}));
  EXPECT_EQ(t.Row(0), (std::vector<float>(4, 0.f)));
}

TEST(TensorTest, ElementwiseOps) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  const Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  a.Add(b);
  EXPECT_EQ(a[2], 33.f);
  a.Sub(b);
  EXPECT_EQ(a[2], 3.f);
  a.Scale(2.f);
  EXPECT_EQ(a[0], 2.f);
  a.Axpy(0.5f, b);
  EXPECT_EQ(a[1], 14.f);
}

TEST(TensorTest, SumAndNorm) {
  const Tensor t = Tensor::FromVector({4}, {1, -2, 2, 0});
  EXPECT_DOUBLE_EQ(t.Sum(), 1.0);
  EXPECT_DOUBLE_EQ(t.Norm(), 3.0);
}

TEST(TensorTest, ShapeStringAndEquality) {
  Tensor t({2, 3});
  EXPECT_EQ(t.ShapeString(), "[2, 3]");
  Tensor u({2, 3});
  EXPECT_TRUE(t == u);
  u[0] = 1.f;
  EXPECT_FALSE(t == u);
}

TEST(TensorTest, NumElements) {
  EXPECT_EQ(NumElements({}), 0);
  EXPECT_EQ(NumElements({5}), 5);
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
  EXPECT_EQ(NumElements({2, 0, 4}), 0);
}

// ---------------------------------------------------------------- matmul

// Reference implementation for cross-checking.
Tensor NaiveMatmul(const Tensor& a, const Tensor& b) {
  Tensor out({a.dim(0), b.dim(1)});
  for (int64_t i = 0; i < a.dim(0); ++i) {
    for (int64_t j = 0; j < b.dim(1); ++j) {
      double acc = 0;
      for (int64_t k = 0; k < a.dim(1); ++k) {
        acc += double(a.at(i, k)) * b.at(k, j);
      }
      out.at(i, j) = float(acc);
    }
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  Tensor out({a.dim(1), a.dim(0)});
  for (int64_t i = 0; i < a.dim(0); ++i) {
    for (int64_t j = 0; j < a.dim(1); ++j) out.at(j, i) = a.at(i, j);
  }
  return out;
}

void ExpectTensorNear(const Tensor& a, const Tensor& b, float tol = 1e-4f) {
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << "at flat index " << i;
  }
}

class MatmulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulShapes, MatchesNaiveForAllTransposes) {
  const auto [m, k, n] = GetParam();
  Rng rng(101);
  const Tensor a = Tensor::Randn({m, k}, rng);
  const Tensor b = Tensor::Randn({k, n}, rng);
  const Tensor expected = NaiveMatmul(a, b);

  Tensor out;
  Matmul(a, b, out);
  ExpectTensorNear(out, expected);

  Tensor out_ta;
  MatmulTransA(Transpose(a), b, out_ta);
  ExpectTensorNear(out_ta, expected);

  Tensor out_tb;
  MatmulTransB(a, Transpose(b), out_tb);
  ExpectTensorNear(out_tb, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                      std::make_tuple(1, 32, 8), std::make_tuple(33, 17, 9)));

TEST(MatmulTest, ReusesOutputStorage) {
  Rng rng(5);
  const Tensor a = Tensor::Randn({4, 3}, rng);
  const Tensor b = Tensor::Randn({3, 2}, rng);
  Tensor out({4, 2});
  out.Fill(99.f);  // stale values must be overwritten
  Matmul(a, b, out);
  ExpectTensorNear(out, NaiveMatmul(a, b));
}

TEST(RowOpsTest, AddRowBias) {
  Tensor m = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor bias = Tensor::FromVector({3}, {10, 20, 30});
  AddRowBias(m, bias);
  EXPECT_EQ(m.at(0, 0), 11.f);
  EXPECT_EQ(m.at(1, 2), 36.f);
}

TEST(RowOpsTest, SumRows) {
  const Tensor m = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor out;
  SumRows(m, out);
  EXPECT_EQ(out[0], 5.f);
  EXPECT_EQ(out[1], 7.f);
  EXPECT_EQ(out[2], 9.f);
}

// ---------------------------------------------------------------- conv ops

TEST(ConvOpsTest, OutputSizeFormula) {
  EXPECT_EQ(ConvOutputSize(28, 5, 1, 0), 24);
  EXPECT_EQ(ConvOutputSize(32, 3, 1, 1), 32);
  EXPECT_EQ(ConvOutputSize(28, 2, 2, 0), 14);
  EXPECT_EQ(ConvOutputSize(7, 2, 2, 0), 3);
}

TEST(ConvOpsTest, Im2ColIdentityKernel) {
  // 1x1 kernel, stride 1: columns are just the pixels.
  Rng rng(7);
  const Tensor input = Tensor::Randn({2, 3, 4, 4}, rng);
  Tensor columns;
  Im2Col(input, 1, 1, 0, columns);
  ASSERT_EQ(columns.dim(0), 2 * 4 * 4);
  ASSERT_EQ(columns.dim(1), 3);
  // Row (n=1, y=2, x=3), channel 2 should equal input(1, 2, 2, 3).
  EXPECT_EQ(columns.at((1 * 4 + 2) * 4 + 3, 2), input.at(1, 2, 2, 3));
}

TEST(ConvOpsTest, Im2ColKnownSmallCase) {
  // 1x1x3x3 image, 2x2 kernel, stride 1, no padding -> 4 rows of 4 values.
  const Tensor input = Tensor::FromVector({1, 1, 3, 3},
                                          {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor columns;
  Im2Col(input, 2, 1, 0, columns);
  ASSERT_EQ(columns.dim(0), 4);
  ASSERT_EQ(columns.dim(1), 4);
  const float expected[4][4] = {
      {1, 2, 4, 5}, {2, 3, 5, 6}, {4, 5, 7, 8}, {5, 6, 8, 9}};
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(columns.at(r, c), expected[r][c]) << r << "," << c;
    }
  }
}

TEST(ConvOpsTest, Im2ColPaddingZeroFills) {
  const Tensor input = Tensor::Ones({1, 1, 2, 2});
  Tensor columns;
  Im2Col(input, 3, 1, 1, columns);  // output 2x2, each row 9 values
  ASSERT_EQ(columns.dim(0), 4);
  ASSERT_EQ(columns.dim(1), 9);
  // Top-left output: kernel covers padding except bottom-right 2x2 block.
  EXPECT_EQ(columns.at(0, 0), 0.f);
  EXPECT_EQ(columns.at(0, 4), 1.f);
}

// Col2Im must be the adjoint of Im2Col: <Im2Col(x), y> == <x, Col2Im(y)>.
class Im2ColAdjoint
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(Im2ColAdjoint, AdjointIdentityHolds) {
  const auto [c, h, kernel, stride, padding] = GetParam();
  const int w = h;
  if (ConvOutputSize(h, kernel, stride, padding) <= 0) GTEST_SKIP();
  Rng rng(17);
  const Tensor x = Tensor::Randn({2, c, h, w}, rng);
  Tensor cols;
  Im2Col(x, kernel, stride, padding, cols);
  const Tensor y = Tensor::Randn(cols.shape(), rng);
  Tensor back;
  Col2Im(y, 2, c, h, w, kernel, stride, padding, back);

  double lhs = 0, rhs = 0;
  for (int64_t i = 0; i < cols.numel(); ++i) lhs += double(cols[i]) * y[i];
  for (int64_t i = 0; i < x.numel(); ++i) rhs += double(x[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-2 + 1e-4 * std::abs(lhs));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, Im2ColAdjoint,
    ::testing::Values(std::make_tuple(1, 6, 3, 1, 0),
                      std::make_tuple(3, 8, 3, 1, 1),
                      std::make_tuple(2, 8, 5, 1, 2),
                      std::make_tuple(3, 9, 3, 2, 1),
                      std::make_tuple(1, 5, 1, 1, 0),
                      std::make_tuple(2, 7, 2, 2, 0)));

// The transposed variants (the fused conv path's orientation) must hold
// exactly the same values as Im2Col/Col2Im, just reindexed. Both gathers are
// pure copies, so Im2ColTransposed is compared bitwise; the scatters add the
// same per-pixel value sets in different orders, so Col2Im is compared with
// a float-rounding tolerance while thread-count invariance stays bitwise.
class Im2ColTransposedEquiv
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(Im2ColTransposedEquiv, MatchesIm2ColReindexed) {
  const auto [c, h, kernel, stride, padding] = GetParam();
  const int w = h + 1;  // non-square spatial extent
  const int out_h = ConvOutputSize(h, kernel, stride, padding);
  const int out_w = ConvOutputSize(w, kernel, stride, padding);
  if (out_h <= 0 || out_w <= 0) GTEST_SKIP();
  const int n = 2;
  Rng rng(29);
  const Tensor x = Tensor::Randn({n, c, h, w}, rng);

  Tensor cols, cols_t;
  Im2Col(x, kernel, stride, padding, cols);
  Im2ColTransposed(x, kernel, stride, padding, cols_t);
  const int64_t ckk = static_cast<int64_t>(c) * kernel * kernel;
  const int64_t total = static_cast<int64_t>(n) * out_h * out_w;
  ASSERT_EQ(cols_t.dim(0), ckk);
  ASSERT_EQ(cols_t.dim(1), total);
  ASSERT_EQ(cols.dim(0), total);
  ASSERT_EQ(cols.dim(1), ckk);
  for (int64_t e = 0; e < ckk; ++e) {
    for (int64_t r = 0; r < total; ++r) {
      ASSERT_EQ(cols_t.at(e, r), cols.at(r, e)) << "e=" << e << " r=" << r;
    }
  }

  // Pool invariance (each task owns whole rows -> bitwise).
  ThreadPool pool(3);
  Tensor cols_t_pooled;
  Im2ColTransposed(x, kernel, stride, padding, cols_t_pooled, &pool);
  for (int64_t i = 0; i < cols_t.numel(); ++i) {
    ASSERT_EQ(cols_t_pooled[i], cols_t[i]) << "flat " << i;
  }
}

TEST_P(Im2ColTransposedEquiv, Col2ImTransposedMatchesCol2Im) {
  const auto [c, h, kernel, stride, padding] = GetParam();
  const int w = h + 1;
  const int out_h = ConvOutputSize(h, kernel, stride, padding);
  const int out_w = ConvOutputSize(w, kernel, stride, padding);
  if (out_h <= 0 || out_w <= 0) GTEST_SKIP();
  const int n = 2;
  const int64_t ckk = static_cast<int64_t>(c) * kernel * kernel;
  const int64_t total = static_cast<int64_t>(n) * out_h * out_w;
  Rng rng(31);
  const Tensor y = Tensor::Randn({total, ckk}, rng);
  Tensor y_t({ckk, total});
  for (int64_t r = 0; r < total; ++r) {
    for (int64_t e = 0; e < ckk; ++e) y_t.at(e, r) = y.at(r, e);
  }

  Tensor back, back_t;
  Col2Im(y, n, c, h, w, kernel, stride, padding, back);
  Col2ImTransposed(y_t, n, c, h, w, kernel, stride, padding, back_t);
  ASSERT_EQ(back_t.shape(), back.shape());
  for (int64_t i = 0; i < back.numel(); ++i) {
    ASSERT_NEAR(back_t[i], back[i], 1e-4 + 1e-5 * std::abs(back[i]))
        << "flat " << i;
  }

  // Pool invariance of the transposed scatter (disjoint image planes,
  // fixed per-image accumulation order -> bitwise).
  ThreadPool pool(3);
  Tensor back_t_pooled;
  Col2ImTransposed(y_t, n, c, h, w, kernel, stride, padding, back_t_pooled,
                   &pool);
  for (int64_t i = 0; i < back_t.numel(); ++i) {
    ASSERT_EQ(back_t_pooled[i], back_t[i]) << "flat " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, Im2ColTransposedEquiv,
    ::testing::Values(std::make_tuple(1, 6, 3, 1, 0),
                      std::make_tuple(3, 8, 3, 1, 1),
                      std::make_tuple(2, 8, 5, 1, 2),
                      std::make_tuple(3, 9, 3, 2, 1),  // stride 2
                      std::make_tuple(1, 5, 1, 1, 0),
                      std::make_tuple(2, 7, 2, 2, 0)));  // stride 2, even k

// ---------------------------------------------------------------- softmax

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(23);
  Tensor logits = Tensor::Randn({5, 7}, rng, 0.f, 3.f);
  SoftmaxRows(logits);
  for (int64_t i = 0; i < 5; ++i) {
    double sum = 0;
    for (int64_t j = 0; j < 7; ++j) {
      EXPECT_GE(logits.at(i, j), 0.f);
      sum += logits.at(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxTest, NumericallyStableForLargeLogits) {
  Tensor logits = Tensor::FromVector({1, 3}, {1000.f, 1001.f, 999.f});
  SoftmaxRows(logits);
  EXPECT_FALSE(std::isnan(logits[0]));
  EXPECT_GT(logits.at(0, 1), logits.at(0, 0));
  EXPECT_GT(logits.at(0, 0), logits.at(0, 2));
}

TEST(SoftmaxTest, UniformLogitsGiveUniformProbs) {
  Tensor logits = Tensor::Full({2, 4}, 3.f);
  SoftmaxRows(logits);
  for (int64_t i = 0; i < logits.numel(); ++i) {
    EXPECT_NEAR(logits[i], 0.25f, 1e-6);
  }
}

TEST(ArgmaxTest, PicksRowMaxima) {
  const Tensor m =
      Tensor::FromVector({3, 3}, {1, 5, 2, 9, 0, 3, 2, 2, 7});
  EXPECT_EQ(ArgmaxRows(m), (std::vector<int>{1, 0, 2}));
}

TEST(ArgmaxTest, TieBreaksToFirst) {
  const Tensor m = Tensor::FromVector({1, 3}, {4, 4, 4});
  EXPECT_EQ(ArgmaxRows(m)[0], 0);
}


TEST(TensorDeathTest, ReshapeWithWrongNumelAborts) {
  Tensor t({2, 3});
  EXPECT_DEATH(t.Reshape({4, 2}), "cannot reshape");
}

TEST(TensorTest, GatherStyleRowAccessOnEmpty) {
  Tensor t({0, 4});
  EXPECT_EQ(t.numel(), 0);
  EXPECT_EQ(t.dim(0), 0);
}

TEST(ConvOpsTest, RectangularInput) {
  // Non-square input: 3x5 image, 2x2 kernel -> 2x4 output.
  Rng rng(31);
  const Tensor input = Tensor::Randn({1, 1, 3, 5}, rng);
  Tensor columns;
  Im2Col(input, 2, 1, 0, columns);
  EXPECT_EQ(columns.dim(0), 2 * 4);
  EXPECT_EQ(columns.dim(1), 4);
  // Spot-check top-left window.
  EXPECT_EQ(columns.at(0, 0), input.at(0, 0, 0, 0));
  EXPECT_EQ(columns.at(0, 3), input.at(0, 0, 1, 1));
}

// Sanitizer regression coverage for the im2col / view index arithmetic:
// these shapes drive every out-of-range branch (negative and past-the-end
// input coordinates, whole rows of padding) so an off-by-one in the signed
// index math shows up as an ASan/UBSan report, not silent corruption.

TEST(ConvOpsTest, Im2ColKernelLargerThanInput) {
  // 2x2 input, 3x3 kernel, padding 1 -> 2x2 output; every window sticks out
  // of the input on at least two sides.
  const Tensor input =
      Tensor::FromVector({1, 1, 2, 2}, {1.f, 2.f, 3.f, 4.f});
  Tensor columns;
  Im2Col(input, 3, 1, 1, columns);
  ASSERT_EQ(columns.dim(0), 4);
  ASSERT_EQ(columns.dim(1), 9);
  // Window centred on (0, 0): the first row and column are padding.
  EXPECT_EQ(columns.at(0, 0), 0.f);
  EXPECT_EQ(columns.at(0, 4), 1.f);  // centre tap = input(0, 0)
  EXPECT_EQ(columns.at(0, 8), 4.f);  // bottom-right tap = input(1, 1)
  // Every padded tap sums to zero; total mass is preserved per centre tap.
  double mass = 0;
  for (int64_t i = 0; i < columns.numel(); ++i) mass += columns[i];
  EXPECT_DOUBLE_EQ(mass, 4 * (1.0 + 2.0 + 3.0 + 4.0));
}

TEST(ConvOpsTest, Im2ColStrideSkipsTrailingElements) {
  // 2x5 input with stride 2, kernel 2: windows start at columns {0, 2};
  // column 4 has no full window, so its value (99) must never be read into
  // any output slot.
  const Tensor tall = Tensor::FromVector(
      {1, 1, 2, 5},
      {1.f, 2.f, 3.f, 4.f, 99.f, 5.f, 6.f, 7.f, 8.f, 99.f});
  Tensor columns;
  Im2Col(tall, 2, 2, 0, columns);
  ASSERT_EQ(columns.dim(0), 1 * 2);  // out_h=1, out_w=2
  ASSERT_EQ(columns.dim(1), 4);
  for (int64_t r = 0; r < columns.dim(0); ++r) {
    for (int64_t c = 0; c < columns.dim(1); ++c) {
      EXPECT_NE(columns.at(r, c), 99.f);
    }
  }
}

TEST(ConvOpsTest, Col2ImScattersPaddingContributionsNowhere) {
  // Adjoint path with stride 2 + padding 1: gradient taps that land in the
  // padding ring must be dropped, not written out of bounds.
  const int input_h = 3, input_w = 3;
  Tensor cols({2 * 2, 4});  // out 2x2 for 3x3 input, kernel 2, stride 2, pad 1
  cols.Fill(1.f);
  Tensor grad;
  Col2Im(cols, 1, 1, input_h, input_w, 2, 2, 1, grad);
  ASSERT_EQ(grad.rank(), 4);
  // Total scattered mass = taps that landed inside the input.
  double inside = grad.Sum();
  EXPECT_GT(inside, 0.0);
  EXPECT_LT(inside, 16.0);  // some taps fell into padding and were dropped
}

TEST(TensorTest, ReshapeViewRoundTripPreservesIndexing) {
  Rng rng(17);
  const Tensor t = Tensor::Randn({3, 4, 5}, rng);
  const Tensor flat = t.Reshape({60});
  const Tensor back = flat.Reshape({3, 4, 5});
  EXPECT_EQ(back, t);
  // Row-major flattening invariant: ((i*4)+j)*5+k addresses the same value.
  EXPECT_EQ(flat[(2 * 4 + 3) * 5 + 4], t[(2 * 4 + 3) * 5 + 4]);
}

}  // namespace
}  // namespace niid
