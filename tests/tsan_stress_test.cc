// Concurrency stress for the ThreadPool substrate. Every test here is
// intended to run under -fsanitize=thread (cmake --preset tsan); the
// assertions are secondary to TSan observing the interleavings.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace niid {
namespace {

TEST(TsanStressTest, ScheduleWaitReuseCycles) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  for (int cycle = 0; cycle < 200; ++cycle) {
    for (int task = 0; task < 16; ++task) {
      pool.Schedule([&total] { total.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
  }
  EXPECT_EQ(total.load(), 200 * 16);
}

TEST(TsanStressTest, ExternalProducersScheduleConcurrently) {
  ThreadPool pool(3);
  std::atomic<int64_t> total{0};
  std::vector<std::thread> producers;
  producers.reserve(4);
  for (int producer = 0; producer < 4; ++producer) {
    producers.emplace_back([&pool, &total] {
      for (int task = 0; task < 100; ++task) {
        pool.Schedule(
            [&total] { total.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  pool.Wait();
  EXPECT_EQ(total.load(), 4 * 100);
}

TEST(TsanStressTest, ParallelForOverSharedTensorDisjointSlots) {
  // The repo-wide parallelism contract: concurrent bodies write only their
  // own output slot. TSan verifies the pool machinery adds no racing access.
  ThreadPool pool(4);
  Tensor shared({256, 64});
  for (int round = 0; round < 20; ++round) {
    ParallelFor(&pool, shared.dim(0), [&shared, round](int64_t row) {
      for (int64_t col = 0; col < shared.dim(1); ++col) {
        shared.at(row, col) = static_cast<float>(row * 1000 + col + round);
      }
    });
  }
  for (int64_t row = 0; row < shared.dim(0); ++row) {
    for (int64_t col = 0; col < shared.dim(1); ++col) {
      EXPECT_EQ(shared.at(row, col), static_cast<float>(row * 1000 + col + 19));
    }
  }
}

TEST(TsanStressTest, ParallelForReadersShareImmutableInput) {
  ThreadPool pool(4);
  Rng rng(7);
  const Tensor input = Tensor::Randn({64, 64}, rng);
  std::vector<double> norms(32, 0.0);
  ParallelFor(&pool, static_cast<int64_t>(norms.size()),
              [&input, &norms](int64_t slot) {
                double acc = 0.0;
                for (int64_t i = 0; i < input.numel(); ++i) {
                  acc += static_cast<double>(input[i]) * input[i];
                }
                norms[slot] = acc;
              });
  for (size_t slot = 1; slot < norms.size(); ++slot) {
    EXPECT_EQ(norms[slot], norms[0]);
  }
}

TEST(TsanStressTest, ParallelMatmulIntoPerSlotOutputs) {
  ThreadPool pool(4);
  Rng rng(11);
  const Tensor a = Tensor::Randn({32, 16}, rng);
  const Tensor b = Tensor::Randn({16, 24}, rng);
  std::vector<Tensor> outputs(8);
  ParallelFor(&pool, static_cast<int64_t>(outputs.size()),
              [&a, &b, &outputs](int64_t slot) {
                Matmul(a, b, outputs[slot]);
              });
  for (size_t slot = 1; slot < outputs.size(); ++slot) {
    EXPECT_EQ(outputs[slot], outputs[0]);
  }
}

TEST(TsanStressTest, ExceptionsUnderConcurrencyStayContained) {
  ThreadPool pool(4);
  for (int cycle = 0; cycle < 50; ++cycle) {
    bool threw = false;
    try {
      ParallelFor(&pool, 64, [cycle](int64_t i) {
        if (i == cycle % 64) throw std::runtime_error("stress");
      });
    } catch (const std::runtime_error&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }
  // Pool must still be fully functional after 50 failed batches.
  std::atomic<int> counter{0};
  ParallelFor(&pool, 128, [&counter](int64_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 128);
}

TEST(TsanStressTest, PoolTeardownWithQueuedWork) {
  // Destruction races: workers draining the queue while the destructor sets
  // shutting_down_. Tasks touch an atomic so TSan sees the accesses.
  for (int cycle = 0; cycle < 50; ++cycle) {
    std::atomic<int> counter{0};
    {
      ThreadPool pool(3);
      for (int task = 0; task < 32; ++task) {
        pool.Schedule([&counter] { counter.fetch_add(1); });
      }
      pool.Wait();
    }
    EXPECT_EQ(counter.load(), 32);
  }
}

}  // namespace
}  // namespace niid
