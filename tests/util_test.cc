#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "util/csv.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/samplers.h"
#include "util/stats.h"
#include "util/table.h"

namespace niid {
namespace {

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.NextUint64() == b.NextUint64());
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  EXPECT_NE(rng.NextUint64(), 0u);
  EXPECT_NE(rng.NextUint64(), rng.NextUint64());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntBoundsAndCoverage) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(5);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.Add(rng.Normal());
  EXPECT_NEAR(stat.mean(), 0.0, 0.03);
  EXPECT_NEAR(stat.stddev(), 1.0, 0.03);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(17);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.Add(rng.Normal(5.0, 2.0));
  EXPECT_NEAR(stat.mean(), 5.0, 0.1);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.1);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(19);
  for (const double shape : {0.5, 1.0, 2.5, 10.0}) {
    RunningStat stat;
    for (int i = 0; i < 20000; ++i) stat.Add(rng.Gamma(shape));
    EXPECT_NEAR(stat.mean(), shape, 0.15 * shape + 0.05) << "shape " << shape;
  }
}

TEST(RngTest, GammaPositive) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.Gamma(0.3), 0.0);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(31);
  Rng child1 = parent.Split();
  Rng child2 = parent.Split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (child1.NextUint64() == child2.NextUint64());
  }
  EXPECT_EQ(same, 0);
}

// ---------------------------------------------------------------- samplers

TEST(SamplersTest, DirichletSumsToOne) {
  Rng rng(37);
  for (int i = 0; i < 50; ++i) {
    const auto p = SampleDirichlet(rng, 10, 0.5);
    double sum = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(SamplersTest, DirichletMeanIsUniform) {
  Rng rng(41);
  std::vector<double> mean(5, 0.0);
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const auto p = SampleDirichlet(rng, 5, 2.0);
    for (int j = 0; j < 5; ++j) mean[j] += p[j];
  }
  for (int j = 0; j < 5; ++j) {
    EXPECT_NEAR(mean[j] / kTrials, 0.2, 0.01);
  }
}

// Smaller beta => more concentrated draws (higher expected max component).
TEST(SamplersTest, SmallerBetaIsMoreSkewed) {
  Rng rng(43);
  auto mean_max = [&rng](double beta) {
    double total = 0.0;
    for (int i = 0; i < 2000; ++i) {
      const auto p = SampleDirichlet(rng, 10, beta);
      total += *std::max_element(p.begin(), p.end());
    }
    return total / 2000;
  };
  EXPECT_GT(mean_max(0.1), mean_max(1.0));
  EXPECT_GT(mean_max(1.0), mean_max(10.0));
}

TEST(SamplersTest, DirichletAsymmetricAlpha) {
  Rng rng(47);
  std::vector<double> mean(3, 0.0);
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const auto p = SampleDirichlet(rng, {1.0, 2.0, 7.0});
    for (int j = 0; j < 3; ++j) mean[j] += p[j];
  }
  EXPECT_NEAR(mean[0] / kTrials, 0.1, 0.01);
  EXPECT_NEAR(mean[1] / kTrials, 0.2, 0.01);
  EXPECT_NEAR(mean[2] / kTrials, 0.7, 0.01);
}

TEST(SamplersTest, ProportionsToCountsExactTotal) {
  Rng rng(53);
  for (int trial = 0; trial < 100; ++trial) {
    const auto p = SampleDirichlet(rng, 7, 0.4);
    const auto counts = ProportionsToCounts(p, 1234);
    int64_t sum = 0;
    for (int64_t c : counts) {
      EXPECT_GE(c, 0);
      sum += c;
    }
    EXPECT_EQ(sum, 1234);
  }
}

TEST(SamplersTest, ProportionsToCountsRounding) {
  // 0.5/0.5 of 3 must produce 2+1 (largest remainder breaks the tie).
  const auto counts = ProportionsToCounts({0.5, 0.5}, 3);
  EXPECT_EQ(counts[0] + counts[1], 3);
  EXPECT_GE(counts[0], 1);
  EXPECT_GE(counts[1], 1);
}

TEST(SamplersTest, ProportionsToCountsZeroTotal) {
  const auto counts = ProportionsToCounts({0.3, 0.7}, 0);
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[1], 0);
}

TEST(SamplersTest, CategoricalMatchesProbabilities) {
  Rng rng(59);
  const std::vector<double> p = {0.1, 0.6, 0.3};
  std::vector<int> counts(3, 0);
  constexpr int kTrials = 30000;
  for (int i = 0; i < kTrials; ++i) ++counts[SampleCategorical(rng, p)];
  EXPECT_NEAR(counts[0] / double(kTrials), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(kTrials), 0.6, 0.01);
  EXPECT_NEAR(counts[2] / double(kTrials), 0.3, 0.01);
}

TEST(SamplersTest, SampleWithoutReplacementDistinctSorted) {
  Rng rng(61);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = SampleWithoutReplacement(rng, 100, 10);
    ASSERT_EQ(sample.size(), 10u);
    for (size_t i = 1; i < sample.size(); ++i) {
      EXPECT_LT(sample[i - 1], sample[i]);  // sorted and distinct
    }
    for (int v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 100);
    }
  }
}

TEST(SamplersTest, SampleWithoutReplacementFull) {
  Rng rng(67);
  const auto sample = SampleWithoutReplacement(rng, 5, 5);
  EXPECT_EQ(sample, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SamplersTest, SampleWithoutReplacementEmpty) {
  Rng rng(71);
  EXPECT_TRUE(SampleWithoutReplacement(rng, 5, 0).empty());
}

// ---------------------------------------------------------------- stats

TEST(StatsTest, RunningStatBasics) {
  RunningStat stat;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(v);
  EXPECT_EQ(stat.count(), 8);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_NEAR(stat.stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
}

TEST(StatsTest, EmptyStatIsZero) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.stddev(), 0.0);
}

TEST(StatsTest, MeanAndStdDevHelpers) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_NEAR(StdDev({1.0, 2.0, 3.0}), std::sqrt(2.0 / 3.0), 1e-12);
}

TEST(StatsTest, FormatAccuracyMatchesPaperStyle) {
  EXPECT_EQ(FormatAccuracy({0.682, 0.675, 0.689}),
            "68.2%±0.6%");
  EXPECT_EQ(FormatPercent(0.995), "99.5%");
  EXPECT_EQ(FormatPercent(0.12345, 2), "12.35%");
}

// ---------------------------------------------------------------- table/csv

TEST(TableTest, AlignsAndPrintsRows) {
  Table table({"a", "bb"});
  table.AddRow({"1", "2"});
  table.AddSeparator();
  table.AddRow({"333", "4"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("333"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 3);
}

TEST(TableTest, MarkdownOutput) {
  Table table({"x", "y"});
  table.AddRow({"1", "2"});
  std::ostringstream out;
  table.PrintMarkdown(out);
  EXPECT_EQ(out.str(), "| x | y |\n|---|---|\n| 1 | 2 |\n");
}

TEST(CsvTest, EscapesSpecialCells) {
  EXPECT_EQ(EscapeCsvCell("plain"), "plain");
  EXPECT_EQ(EscapeCsvCell("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvCell("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(EscapeCsvCell("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, WritesFile) {
  const std::string path = ::testing::TempDir() + "/niid_csv_test.csv";
  {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.WriteHeader({"col1", "col2"});
    writer.WriteRow({"a", "b,c"});
    writer.Flush();
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "col1,col2");
  EXPECT_EQ(line2, "a,\"b,c\"");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- flags

TEST(FlagsTest, ParsesKeyValueAndBooleans) {
  const char* argv[] = {"prog",        "--rounds=30",  "--lr=0.05",
                        "--quick",     "--name=mnist", "positional",
                        "--flag=false"};
  FlagParser flags(7, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("rounds", 1), 30);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0.0), 0.05);
  EXPECT_TRUE(flags.GetBool("quick", false));
  EXPECT_FALSE(flags.GetBool("flag", true));
  EXPECT_EQ(flags.GetString("name", ""), "mnist");
  EXPECT_EQ(flags.GetString("missing", "default"), "default");
  EXPECT_EQ(flags.GetInt("missing", 77), 77);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
  EXPECT_TRUE(flags.Has("quick"));
  EXPECT_FALSE(flags.Has("nothere"));
}


TEST(FlagsTest, ValidateAcceptsFullyQueriedCommandLine) {
  const char* argv[] = {"prog", "--rounds=30", "--quick"};
  FlagParser flags(3, const_cast<char**>(argv));
  flags.GetInt("rounds", 1);
  flags.GetBool("quick", false);
  EXPECT_TRUE(flags.Validate().ok());
}

TEST(FlagsTest, ValidateRejectsUnknownFlagAndListsValidOnes) {
  const char* argv[] = {"prog", "--rounds=30", "--ruonds=50"};
  FlagParser flags(3, const_cast<char**>(argv));
  flags.GetInt("rounds", 1);
  flags.GetDouble("lr", 0.01);
  const Status status = flags.Validate();
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The message must name the offender and the valid surface, so a typo is
  // actionable instead of silently ignored.
  EXPECT_NE(status.message().find("ruonds"), std::string::npos);
  EXPECT_NE(status.message().find("rounds"), std::string::npos);
  EXPECT_NE(status.message().find("lr"), std::string::npos);
}

TEST(FlagsTest, ValidateRejectsMalformedNumericValues) {
  const char* argv[] = {"prog", "--rounds=abc"};
  FlagParser flags(2, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("rounds", 7), 7);  // default on parse failure
  const Status status = flags.Validate();
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("rounds"), std::string::npos);
}

TEST(FlagsTest, ValidateRejectsPartiallyNumericAndOverflowValues) {
  const char* argv[] = {"prog", "--epochs=3x", "--seed=999999999999999999999",
                        "--lr=0.1.2", "--flag=maybe"};
  FlagParser flags(5, const_cast<char**>(argv));
  flags.GetInt("epochs", 1);
  flags.GetInt64("seed", 1);
  flags.GetDouble("lr", 0.0);
  flags.GetBool("flag", false);
  const Status status = flags.Validate();
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  for (const char* name : {"epochs", "seed", "lr", "flag"}) {
    EXPECT_NE(status.message().find(name), std::string::npos) << name;
  }
}

TEST(FlagsTest, ValidateHonorsExtraKnownNames) {
  const char* argv[] = {"prog", "--late_flag=x"};
  FlagParser flags(2, const_cast<char**>(argv));
  EXPECT_FALSE(flags.Validate().ok());
  EXPECT_TRUE(flags.Validate({"late_flag"}).ok());
}

TEST(FlagsTest, GetBoolAcceptsCommonSpellings) {
  const char* argv[] = {"prog",      "--a=true", "--b=1",  "--c=YES",
                        "--d=on",    "--e=false", "--f=0", "--g=No",
                        "--h=off"};
  FlagParser flags(9, const_cast<char**>(argv));
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_TRUE(flags.GetBool("d", false));
  EXPECT_FALSE(flags.GetBool("e", true));
  EXPECT_FALSE(flags.GetBool("f", true));
  EXPECT_FALSE(flags.GetBool("g", true));
  EXPECT_FALSE(flags.GetBool("h", true));
  EXPECT_TRUE(flags.Validate().ok());
}

TEST(FlagsTest, SplitCommaList) {
  EXPECT_EQ(SplitCommaList("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitCommaList(""), (std::vector<std::string>{}));
  EXPECT_EQ(SplitCommaList("one"), (std::vector<std::string>{"one"}));
  EXPECT_EQ(SplitCommaList(",a,,b,"),
            (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace niid
