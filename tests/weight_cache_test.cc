// Packed-weight cache invalidation tests (DESIGN.md §12).
//
// Conv2d and Linear cache their weight operands in GEMM panel format and
// reuse them across forward/backward calls; the contract is that any
// Parameter::value mutation outside a layer's own Forward/Backward
// invalidates those caches (SgdOptimizer::Step, LoadState and friends,
// LoadModel). These tests prove the caches are pure speed — every cached
// run is bit-identical to a cache-free oracle — through the two lifecycles
// that matter: the train -> step -> train loop, and workspace time-sharing
// where many parties churn through one TrainContext.
//
// Suites are prefixed "Gemm"/"Workspace" so the tsan CI filter picks them
// up alongside the engine determinism tests.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "data/synthetic.h"
#include "fl/client.h"
#include "fl/workspace.h"
#include "nn/loss.h"
#include "nn/models/factory.h"
#include "nn/optimizer.h"
#include "nn/parameters.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace niid {
namespace {

ModelSpec CnnSpec() {
  ModelSpec spec;
  spec.name = "simple-cnn";
  spec.input_channels = 1;
  spec.input_height = 16;
  spec.input_width = 16;
  spec.num_classes = 4;
  return spec;
}

// Trains `steps` minibatches and returns every gradient bit produced along
// the way plus the final parameter state, so a single vector comparison
// asserts "train -> step -> train produces bit-identical gradients".
StateVector TrainTrace(bool caching, int steps) {
  Rng init(1234);
  std::unique_ptr<Module> model = CreateModel(CnnSpec(), init);
  model->SetWeightPackCaching(caching);
  model->SetTraining(true);
  SgdOptimizer opt(*model, /*learning_rate=*/0.05f);
  Rng data_rng(777);
  StateVector trace;
  for (int step = 0; step < steps; ++step) {
    Tensor batch = Tensor::Uniform({8, 1, 16, 16}, data_rng, -1.f, 1.f);
    std::vector<int> labels(8);
    for (int& l : labels) l = static_cast<int>(data_rng.UniformInt(4));
    opt.ZeroGrads();
    Tensor logits = model->Forward(batch);
    LossResult loss = SoftmaxCrossEntropy(logits, labels);
    model->Backward(loss.grad_logits);
    for (Parameter* p : model->Parameters()) {
      const float* g = p->grad.data();
      trace.insert(trace.end(), g, g + p->grad.numel());
    }
    opt.Step();
  }
  const StateVector final_state = FlattenState(*model);
  trace.insert(trace.end(), final_state.begin(), final_state.end());
  return trace;
}

TEST(GemmWeightCacheTest, TrainStepTrainMatchesCacheFreeOracle) {
  const StateVector cache_free = TrainTrace(/*caching=*/false, /*steps=*/4);
  const StateVector cached = TrainTrace(/*caching=*/true, /*steps=*/4);
  ASSERT_EQ(cached.size(), cache_free.size());
  for (size_t i = 0; i < cached.size(); ++i) {
    ASSERT_EQ(cached[i], cache_free[i]) << "trace position " << i;
  }
}

TEST(GemmWeightCacheTest, OptimizerStepInvalidatesForwardPack) {
  // Forward once (populating the packed weight caches), step the optimizer,
  // forward again: the second forward must see the NEW weights, i.e. match
  // a cache-free model loaded with the post-step state.
  Rng init(55);
  std::unique_ptr<Module> model = CreateModel(CnnSpec(), init);
  model->SetTraining(true);
  SgdOptimizer opt(*model, /*learning_rate=*/0.1f);

  Rng data_rng(66);
  Tensor batch = Tensor::Uniform({4, 1, 16, 16}, data_rng, -1.f, 1.f);
  std::vector<int> labels = {0, 1, 2, 3};
  opt.ZeroGrads();
  LossResult loss = SoftmaxCrossEntropy(model->Forward(batch), labels);
  model->Backward(loss.grad_logits);
  opt.Step();
  const Tensor after_step = model->Forward(batch);

  Rng init2(55);
  std::unique_ptr<Module> oracle = CreateModel(CnnSpec(), init2);
  oracle->SetWeightPackCaching(false);
  oracle->SetTraining(true);
  LoadState(*oracle, FlattenState(*model));
  const Tensor expected = oracle->Forward(batch);
  ASSERT_EQ(after_step.shape(), expected.shape());
  for (int64_t i = 0; i < expected.numel(); ++i) {
    ASSERT_EQ(after_step.data()[i], expected.data()[i]) << "logit " << i;
  }
}

// --------------------------------------------------- workspace time-sharing

std::unique_ptr<Client> MakeImageClient(int id, uint64_t seed,
                                        const Dataset& full) {
  std::vector<int64_t> shard;
  for (int64_t k = 0; k < 32; ++k) {
    shard.push_back((static_cast<int64_t>(id) * 32 + k) % full.size());
  }
  return std::make_unique<Client>(id, Subset(full, shard), Rng(seed));
}

TEST(WorkspaceWeightCacheTest, SurvivesTrainContextTimeSharing) {
  SyntheticImageConfig config;
  config.channels = 1;
  config.height = 16;
  config.width = 16;
  config.num_classes = 4;
  config.train_size = 64;
  config.test_size = 1;
  config.seed = 321;
  const Dataset full = MakeSyntheticImages(config).train;

  ModelSpec spec = CnnSpec();
  const ModelFactory factory = MakeModelFactory(spec);
  Rng global_rng(9);
  const StateVector global = FlattenState(*factory(global_rng));

  LocalTrainOptions options;
  options.local_epochs = 2;
  options.batch_size = 8;
  options.learning_rate = 0.05f;

  // Client B trained in a context previously occupied by client A (whose
  // training left packed caches for A's final weights behind)...
  TrainContext shared(factory);
  auto client_a = MakeImageClient(0, 11, full);
  client_a->Train(shared, global, options);
  auto client_b = MakeImageClient(1, 22, full);
  const LocalUpdate shared_update = client_b->Train(shared, global, options);

  // ...must produce the same bits as client B in a private, never-used
  // context. (Fresh Client: Train consumes the client's private RNG.)
  TrainContext pristine(factory);
  auto client_b2 = MakeImageClient(1, 22, full);
  const LocalUpdate private_update = client_b2->Train(pristine, global,
                                                      options);

  EXPECT_EQ(shared_update.tau, private_update.tau);
  EXPECT_EQ(shared_update.average_loss, private_update.average_loss);
  ASSERT_EQ(shared_update.delta.size(), private_update.delta.size());
  for (size_t i = 0; i < shared_update.delta.size(); ++i) {
    ASSERT_EQ(shared_update.delta[i], private_update.delta[i])
        << "delta position " << i;
  }
}

}  // namespace
}  // namespace niid
