// Tests for the dataset exporters (IDX / CIFAR / LIBSVM writers) and the
// leaderboard module.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/leaderboard.h"
#include "data/loaders.h"
#include "data/synthetic.h"
#include "data/writers.h"

namespace niid {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------- writers

TEST(WritersTest, IdxRoundTripPreservesDataWithinQuantization) {
  SyntheticImageConfig config;
  config.train_size = 30;
  config.test_size = 5;
  config.height = 12;
  config.width = 10;
  const Dataset original = MakeSyntheticImages(config).train;

  const std::string image_path = TempPath("writer_images.idx");
  const std::string label_path = TempPath("writer_labels.idx");
  ASSERT_TRUE(SaveIdx(original, image_path, label_path).ok());
  auto reloaded = LoadIdx(image_path, label_path, "roundtrip");
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  EXPECT_EQ(reloaded->size(), original.size());
  EXPECT_EQ(reloaded->features.shape(), original.features.shape());
  EXPECT_EQ(reloaded->labels, original.labels);
  float max_error = 0.f;
  for (int64_t i = 0; i < original.features.numel(); ++i) {
    max_error = std::max(
        max_error, std::abs(original.features[i] - reloaded->features[i]));
  }
  EXPECT_LE(max_error, 0.5f / 255.f + 1e-5f);  // uint8 quantization only
  std::remove(image_path.c_str());
  std::remove(label_path.c_str());
}

TEST(WritersTest, IdxRejectsMultiChannel) {
  Dataset d;
  d.num_classes = 2;
  d.features = Tensor::Zeros({2, 3, 4, 4});
  d.labels = {0, 1};
  EXPECT_FALSE(SaveIdx(d, TempPath("x"), TempPath("y")).ok());
}

TEST(WritersTest, Cifar10RoundTrip) {
  SyntheticImageConfig config;
  config.train_size = 7;
  config.test_size = 2;
  config.channels = 3;
  config.height = 32;
  config.width = 32;
  const Dataset original = MakeSyntheticImages(config).train;
  const std::string path = TempPath("writer_cifar.bin");
  ASSERT_TRUE(SaveCifar10(original, path).ok());
  auto reloaded = LoadCifar10({path}, "roundtrip");
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->size(), 7);
  EXPECT_EQ(reloaded->labels, original.labels);
  float max_error = 0.f;
  for (int64_t i = 0; i < original.features.numel(); ++i) {
    max_error = std::max(
        max_error, std::abs(original.features[i] - reloaded->features[i]));
  }
  EXPECT_LE(max_error, 0.5f / 255.f + 1e-5f);
  std::remove(path.c_str());
}

TEST(WritersTest, Cifar10RejectsWrongShape) {
  Dataset d;
  d.num_classes = 10;
  d.features = Tensor::Zeros({2, 1, 28, 28});
  d.labels = {0, 1};
  EXPECT_FALSE(SaveCifar10(d, TempPath("x")).ok());
}

TEST(WritersTest, LibsvmRoundTripBinaryLabels) {
  SyntheticTabularConfig config;
  config.train_size = 40;
  config.test_size = 5;
  config.num_features = 12;
  config.density = 0.5f;
  const Dataset original = MakeSyntheticTabular(config).train;
  const std::string path = TempPath("writer.libsvm");
  ASSERT_TRUE(SaveLibsvm(original, path).ok());
  auto reloaded = LoadLibsvm(path, 12, "roundtrip");
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->size(), original.size());
  EXPECT_EQ(reloaded->labels, original.labels);  // -1/+1 maps back to 0/1
  for (int64_t i = 0; i < original.features.numel(); ++i) {
    EXPECT_NEAR(reloaded->features[i], original.features[i], 1e-4f);
  }
  std::remove(path.c_str());
}

TEST(WritersTest, LibsvmThresholdSparsifies) {
  Dataset d;
  d.num_classes = 2;
  d.features = Tensor::FromVector({1, 3}, {0.001f, 0.5f, -0.7f});
  d.labels = {1};
  const std::string path = TempPath("writer_sparse.libsvm");
  ASSERT_TRUE(SaveLibsvm(d, path, /*zero_threshold=*/0.01f).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line.find("1:"), std::string::npos);  // below threshold, dropped
  EXPECT_NE(line.find("2:"), std::string::npos);
  EXPECT_NE(line.find("3:"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- board

LeaderboardEntry Entry(const std::string& dataset,
                       const std::string& partition,
                       const std::string& algorithm, double accuracy) {
  return {dataset, partition, algorithm, accuracy, 0.01, 3};
}

TEST(LeaderboardTest, RanksByWinsThenMeanRank) {
  Leaderboard board;
  // Setting A: prox wins. Setting B: prox wins. Setting C: scaffold wins.
  board.Add(Entry("mnist", "#C=2", "fedavg", 0.80));
  board.Add(Entry("mnist", "#C=2", "fedprox", 0.85));
  board.Add(Entry("mnist", "#C=2", "scaffold", 0.70));
  board.Add(Entry("cifar10", "p~Dir(0.5)", "fedavg", 0.60));
  board.Add(Entry("cifar10", "p~Dir(0.5)", "fedprox", 0.65));
  board.Add(Entry("cifar10", "p~Dir(0.5)", "scaffold", 0.62));
  board.Add(Entry("mnist", "x~Gau(0.1)", "fedavg", 0.90));
  board.Add(Entry("mnist", "x~Gau(0.1)", "fedprox", 0.91));
  board.Add(Entry("mnist", "x~Gau(0.1)", "scaffold", 0.95));

  EXPECT_EQ(board.num_settings(), 3);
  const auto ranks = board.Rank();
  ASSERT_EQ(ranks.size(), 3u);
  EXPECT_EQ(ranks[0].algorithm, "fedprox");
  EXPECT_EQ(ranks[0].wins, 2);
  EXPECT_EQ(ranks[1].algorithm, "scaffold");
  EXPECT_EQ(ranks[1].wins, 1);
  EXPECT_EQ(ranks[2].algorithm, "fedavg");
  EXPECT_EQ(ranks[2].wins, 0);
  EXPECT_LT(ranks[0].mean_rank, ranks[2].mean_rank);
}

TEST(LeaderboardTest, ReAddingReplacesCell) {
  Leaderboard board;
  board.Add(Entry("mnist", "#C=2", "fedavg", 0.5));
  board.Add(Entry("mnist", "#C=2", "fedavg", 0.9));
  ASSERT_EQ(board.entries().size(), 1u);
  EXPECT_DOUBLE_EQ(board.entries()[0].mean_accuracy, 0.9);
}

TEST(LeaderboardTest, AddResultUsesConfigLabels) {
  ExperimentResult result;
  result.config.dataset = "svhn";
  result.config.algorithm = "fednova";
  result.config.partition.strategy = PartitionStrategy::kLabelQuantity;
  result.config.partition.labels_per_party = 3;
  result.trials.push_back({{0.5}, {0.6}, 0.5, 0});
  result.trials.push_back({{0.7}, {0.4}, 0.7, 0});
  Leaderboard board;
  board.AddResult(result);
  ASSERT_EQ(board.entries().size(), 1u);
  const LeaderboardEntry& entry = board.entries()[0];
  EXPECT_EQ(entry.dataset, "svhn");
  EXPECT_EQ(entry.partition, "#C=3");
  EXPECT_EQ(entry.algorithm, "fednova");
  EXPECT_NEAR(entry.mean_accuracy, 0.6, 1e-12);
  EXPECT_EQ(entry.trials, 2);
}

TEST(LeaderboardTest, PrintAndCsv) {
  Leaderboard board;
  board.Add(Entry("mnist", "#C=1", "fedprox", 0.3));
  board.Add(Entry("mnist", "#C=1", "fedavg", 0.1));
  std::ostringstream out;
  board.Print(out);
  EXPECT_NE(out.str().find("fedprox"), std::string::npos);
  EXPECT_NE(out.str().find("1 non-IID settings"), std::string::npos);

  const std::string path = TempPath("leaderboard.csv");
  ASSERT_TRUE(board.SaveCsv(path).ok());
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "dataset,partition,algorithm,mean_accuracy,std_accuracy,trials");
  std::remove(path.c_str());
}

TEST(LeaderboardTest, EmptyBoardIsSane) {
  Leaderboard board;
  EXPECT_EQ(board.num_settings(), 0);
  EXPECT_TRUE(board.Rank().empty());
  std::ostringstream out;
  board.Print(out);  // must not crash
}

}  // namespace
}  // namespace niid
