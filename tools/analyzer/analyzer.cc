#include "analyzer/analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace niid::analyzer {
namespace {

namespace fs = std::filesystem;

void RunChecks(const SourceFile& f, const StatusRegistry& registry,
               std::vector<Finding>* out) {
  CheckParallelRegions(f, out);
  CheckDeterministicIteration(f, out);
  CheckHotPathAllocation(f, out);
  CheckDiscardedStatus(f, registry, out);
}

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.check < b.check;
            });
}

bool IsCppSource(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

}  // namespace

const char* const kRepoScanDirs[] = {"src", "tests", "bench", "examples",
                                     "tools/analyzer"};
const int kRepoScanDirCount = 5;

std::vector<Finding> AnalyzeSource(const std::string& path,
                                   const std::string& content) {
  SourceFile f = ParseSource(path, content);
  StatusRegistry registry;
  CollectStatusFunctions(f, &registry);
  std::vector<Finding> findings;
  RunChecks(f, registry, &findings);
  SortFindings(&findings);
  return findings;
}

std::vector<Finding> AnalyzeFiles(
    const std::vector<std::pair<std::string, std::string>>& files) {
  std::vector<SourceFile> parsed;
  parsed.reserve(files.size());
  StatusRegistry registry;
  for (const auto& [path, content] : files) {
    parsed.push_back(ParseSource(path, content));
    CollectStatusFunctions(parsed.back(), &registry);
  }
  std::vector<Finding> findings;
  for (const SourceFile& f : parsed) {
    RunChecks(f, registry, &findings);
  }
  SortFindings(&findings);
  return findings;
}

std::vector<Finding> AnalyzeRepo(const std::string& root, std::string* error) {
  std::vector<std::pair<std::string, std::string>> files;
  std::error_code ec;
  for (int d = 0; d < kRepoScanDirCount; ++d) {
    fs::path dir = fs::path(root) / kRepoScanDirs[d];
    if (!fs::is_directory(dir, ec)) continue;
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(dir, ec)) {
      if (entry.is_regular_file(ec) && IsCppSource(entry.path())) {
        paths.push_back(entry.path());
      }
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& p : paths) {
      std::ifstream in(p, std::ios::binary);
      if (!in) {
        if (error != nullptr) *error = "cannot read " + p.string();
        return {};
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      std::string rel = fs::relative(p, root, ec).generic_string();
      if (ec) rel = p.generic_string();
      files.emplace_back(std::move(rel), buffer.str());
    }
  }
  if (files.empty() && error != nullptr) {
    *error = "no C++ sources found under " + root;
    return {};
  }
  return AnalyzeFiles(files);
}

}  // namespace niid::analyzer
