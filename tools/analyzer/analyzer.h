#ifndef NIID_TOOLS_ANALYZER_ANALYZER_H_
#define NIID_TOOLS_ANALYZER_ANALYZER_H_

#include <string>
#include <utility>
#include <vector>

#include "analyzer/checks.h"

namespace niid::analyzer {

/// Runs every check over one in-memory source. The discarded-status registry
/// is built from this source alone — the form the fixture tests use.
std::vector<Finding> AnalyzeSource(const std::string& path,
                                   const std::string& content);

/// Two-pass analysis over a set of (repo-relative path, content) pairs: the
/// Status registry is built from all files first, then every file is checked
/// against it. Findings come back sorted by (file, line).
std::vector<Finding> AnalyzeFiles(
    const std::vector<std::pair<std::string, std::string>>& files);

/// Directories under the repo root that AnalyzeRepo scans. tools/analyzer is
/// included: the analyzer dogfoods itself.
extern const char* const kRepoScanDirs[];
extern const int kRepoScanDirCount;

/// Walks the standard code dirs under `root`, reads every .h/.cc/.cpp/.hpp,
/// and runs AnalyzeFiles. On I/O failure sets *error and returns empty.
std::vector<Finding> AnalyzeRepo(const std::string& root, std::string* error);

}  // namespace niid::analyzer

#endif  // NIID_TOOLS_ANALYZER_ANALYZER_H_
