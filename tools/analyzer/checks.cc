#include "analyzer/checks.h"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>

namespace niid::analyzer {
namespace {

// Keywords that, when appearing immediately before an identifier, do NOT
// indicate a declaration of that identifier (`return x`, `new T`, ...).
// Everything else identifier-shaped in that slot (type names, `auto`,
// `const`, `int64_t`, ...) is treated as the start of a declaration.
const std::set<std::string>& NonDeclKeywords() {
  static const std::set<std::string> kSet = {
      "return", "new",    "delete", "throw",  "case",   "goto",
      "else",   "do",     "sizeof", "typeid", "co_return", "co_await",
      "co_yield", "operator",
  };
  return kSet;
}

bool IsAssignOp(const Token& t) {
  if (t.kind != TokenKind::kPunct) return false;
  return t.text == "=" || t.text == "+=" || t.text == "-=" || t.text == "*=" ||
         t.text == "/=" || t.text == "%=" || t.text == "&=" || t.text == "|=" ||
         t.text == "^=" || t.text == "<<=" || t.text == "++" || t.text == "--";
}

bool IsChainSeparator(const Token& t) {
  return IsPunct(t, ".") || IsPunct(t, "->") || IsPunct(t, "::");
}

/// Info about one lambda expression found in the token stream.
struct LambdaInfo {
  int intro_open = -1;   // '[' index
  int intro_close = -1;  // ']' index
  int body_open = -1;    // '{' index
  int body_close = -1;   // '}' index
  bool capture_default_ref = false;  // [&]
  bool capture_default_val = false;  // [=]
  bool captures_this = false;
  std::set<std::string> ref_captures;  // [&name]
  std::set<std::string> val_captures;  // [name] / [name = init]
  std::set<std::string> params;
};

/// True when the `[` at `i` begins a lambda introducer rather than a
/// subscript: a subscript's `[` follows a value (identifier, `)`, `]`, or a
/// literal); a lambda introducer follows an operator, `(`, `,`, `{`, `;`, ...
bool IsLambdaIntro(const std::vector<Token>& tokens, int i) {
  if (i == 0) return true;
  const Token& prev = tokens[i - 1];
  if (prev.kind == TokenKind::kIdentifier || prev.kind == TokenKind::kNumber ||
      prev.kind == TokenKind::kString) {
    return false;
  }
  return !(IsPunct(prev, ")") || IsPunct(prev, "]"));
}

/// Parses the lambda whose introducer `[` sits at `intro`. Returns nullopt if
/// no body brace is found (e.g. it was actually an attribute `[[...]]`).
std::optional<LambdaInfo> ParseLambdaAt(const std::vector<Token>& tokens,
                                        const TokenTree& tree, int intro) {
  const int n = static_cast<int>(tokens.size());
  LambdaInfo lambda;
  lambda.intro_open = intro;
  lambda.intro_close = tree.Match(intro);
  if (lambda.intro_close < 0) return std::nullopt;

  // Captures: comma-separated at depth 0 inside the introducer.
  int i = intro + 1;
  while (i < lambda.intro_close) {
    // One capture item: up to the next top-level ','.
    int item_end = i;
    while (item_end < lambda.intro_close) {
      if (IsOpenBracket(tokens[item_end])) {
        int m = tree.Match(item_end);
        item_end = (m < 0) ? lambda.intro_close : m;
      } else if (IsPunct(tokens[item_end], ",")) {
        break;
      }
      ++item_end;
    }
    // Classify the item.
    int j = i;
    if (j < item_end && IsPunct(tokens[j], "*")) ++j;  // [*this]
    if (j < item_end && IsPunct(tokens[j], "&")) {
      if (j + 1 < item_end && tokens[j + 1].kind == TokenKind::kIdentifier) {
        lambda.ref_captures.insert(tokens[j + 1].text);
      } else {
        lambda.capture_default_ref = true;
      }
    } else if (j < item_end && IsPunct(tokens[j], "=")) {
      lambda.capture_default_val = true;
    } else if (j < item_end && IsIdent(tokens[j], "this")) {
      lambda.captures_this = true;
    } else if (j < item_end && tokens[j].kind == TokenKind::kIdentifier) {
      // Plain copy or init-capture `name = expr`: either way `name` is a
      // private copy inside the lambda.
      lambda.val_captures.insert(tokens[j].text);
    }
    i = item_end + 1;
  }

  // Parameter list (optional).
  i = lambda.intro_close + 1;
  if (i < n && IsPunct(tokens[i], "(")) {
    int close = tree.Match(i);
    if (close < 0) return std::nullopt;
    // Per comma-separated section, the parameter name is the last identifier.
    int last_ident = -1;
    for (int j = i + 1; j <= close; ++j) {
      const Token& t = tokens[j];
      if (j == close || (IsPunct(t, ",") )) {
        if (last_ident >= 0) lambda.params.insert(tokens[last_ident].text);
        last_ident = -1;
        continue;
      }
      if (IsOpenBracket(t)) {
        int m = tree.Match(j);
        if (m < 0) break;
        j = m;
        continue;
      }
      if (t.kind == TokenKind::kIdentifier) last_ident = j;
    }
    i = close + 1;
  }

  // Skip specifiers / trailing return type until the body `{`.
  while (i < n && !IsPunct(tokens[i], "{")) {
    if (IsPunct(tokens[i], ";") || IsPunct(tokens[i], ")") ||
        IsPunct(tokens[i], ",")) {
      return std::nullopt;  // lambda without body here (declaration context)
    }
    if (IsOpenBracket(tokens[i])) {
      int m = tree.Match(i);
      if (m < 0) return std::nullopt;
      i = m;
    }
    ++i;
  }
  if (i >= n) return std::nullopt;
  lambda.body_open = i;
  lambda.body_close = tree.Match(i);
  if (lambda.body_close < 0) return std::nullopt;
  return lambda;
}

/// Collects names declared with float-like types anywhere in the file:
/// `float x`, `double* p`, `std::vector<float> slots`. Token-level heuristic:
/// after a `float`/`double` token, skip `*` `&` `>` `const`, record the next
/// identifier.
std::set<std::string> CollectFloatNames(const std::vector<Token>& tokens) {
  std::set<std::string> names;
  const int n = static_cast<int>(tokens.size());
  for (int i = 0; i < n; ++i) {
    if (!IsIdent(tokens[i], "float") && !IsIdent(tokens[i], "double")) continue;
    int j = i + 1;
    while (j < n && (IsPunct(tokens[j], "*") || IsPunct(tokens[j], "&") ||
                     IsPunct(tokens[j], ">") || IsIdent(tokens[j], "const"))) {
      ++j;
    }
    if (j < n && tokens[j].kind == TokenKind::kIdentifier) {
      names.insert(tokens[j].text);
    }
  }
  return names;
}

/// Names declared std::atomic<...> — writes to these are race-free, so the
/// parallel-capture check exempts them (ordering nondeterminism from atomics
/// is the float-reduction check's concern, which does not exempt them).
std::set<std::string> CollectAtomicNames(const std::vector<Token>& tokens,
                                         const TokenTree& tree) {
  std::set<std::string> names;
  const int n = static_cast<int>(tokens.size());
  for (int i = 0; i < n; ++i) {
    if (!IsIdent(tokens[i], "atomic")) continue;
    int j = i + 1;
    if (j < n && IsPunct(tokens[j], "<")) j = SkipTemplateArgs(tokens, tree, j);
    while (j < n && (IsPunct(tokens[j], "*") || IsPunct(tokens[j], "&"))) ++j;
    if (j < n && tokens[j].kind == TokenKind::kIdentifier) {
      names.insert(tokens[j].text);
    }
  }
  return names;
}

/// Local declarations inside [begin, end): identifier preceded by a type-ish
/// token. Permissive by design — a false "local" silences a finding, never
/// invents one, and the NOLINT policy prefers under-reporting locals' races
/// to spamming every `Foo x = ...;`.
std::set<std::string> CollectLocalDecls(const std::vector<Token>& tokens,
                                        int begin, int end) {
  std::set<std::string> locals;
  for (int i = begin + 1; i < end; ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier) continue;
    const Token& prev = tokens[i - 1];
    bool type_prev = false;
    if (prev.kind == TokenKind::kIdentifier &&
        NonDeclKeywords().count(prev.text) == 0) {
      type_prev = true;
    } else if (IsPunct(prev, "*") || IsPunct(prev, "&") || IsPunct(prev, ">") ||
               (prev.kind == TokenKind::kPunct && prev.text == "&&")) {
      type_prev = true;
    }
    if (!type_prev) continue;
    if (i + 1 >= end) continue;
    const Token& next = tokens[i + 1];
    if (IsPunct(next, "=") || IsPunct(next, ";") || IsPunct(next, ",") ||
        IsPunct(next, ")") || IsPunct(next, "(") || IsPunct(next, "{") ||
        IsPunct(next, "[") || IsPunct(next, ":")) {
      locals.insert(tokens[i].text);
    }
  }
  return locals;
}

/// The write target reached by walking left from an assignment operator:
/// base identifier of the chain plus every index group crossed on the way.
/// Both `[...]` subscripts and call parens count as index groups — the repo's
/// bounds-checked accessors (`t.at(row, col) = v`) are subscripts in spirit.
struct WriteTarget {
  std::string base;
  std::vector<std::pair<int, int>> index_groups;  // token ranges incl. brackets
};

std::optional<WriteTarget> ResolveWriteTarget(const std::vector<Token>& tokens,
                                              const TokenTree& tree, int op,
                                              int limit_begin) {
  WriteTarget target;
  int q = op - 1;
  // Prefix ++/--: target is on the right.
  if ((IsPunct(tokens[op], "++") || IsPunct(tokens[op], "--")) &&
      (q < limit_begin || !(tokens[q].kind == TokenKind::kIdentifier ||
                            IsPunct(tokens[q], ")") || IsPunct(tokens[q], "]")))) {
    int r = op + 1;
    if (r < static_cast<int>(tokens.size()) &&
        tokens[r].kind == TokenKind::kIdentifier) {
      // Walk the chain forward: name (.|->|::) name ... [subscripts]
      target.base = tokens[r].text;
      int s = r + 1;
      while (s + 1 < static_cast<int>(tokens.size())) {
        if (IsPunct(tokens[s], "[")) {
          int m = tree.Match(s);
          if (m < 0) break;
          target.index_groups.push_back({s, m});
          s = m + 1;
          continue;
        }
        if (IsChainSeparator(tokens[s]) &&
            tokens[s + 1].kind == TokenKind::kIdentifier) {
          s += 2;
          continue;
        }
        break;
      }
      return target;
    }
    return std::nullopt;
  }

  // Walk left over trailing subscript / call groups and member chains.
  while (q >= limit_begin) {
    const Token& t = tokens[q];
    if (IsPunct(t, "]") || IsPunct(t, ")")) {
      int m = tree.Match(q);
      if (m < 0) return std::nullopt;
      target.index_groups.push_back({m, q});
      q = m - 1;
      continue;
    }
    if (t.kind == TokenKind::kIdentifier) {
      target.base = t.text;
      // Continue left while a chain separator precedes (`a.b.c`, `p->x`);
      // the thing before the separator may itself be a group (`f(i).x`).
      if (q - 1 >= limit_begin && IsChainSeparator(tokens[q - 1])) {
        q -= 2;
        continue;
      }
      return target;
    }
    if (IsPunct(t, "*")) {
      // Deref write `*p = ...`: keep walking left for the pointer name.
      --q;
      continue;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

bool SubscriptMentions(const std::vector<Token>& tokens,
                       const std::pair<int, int>& range,
                       const std::set<std::string>& names) {
  for (int i = range.first + 1; i < range.second; ++i) {
    if (tokens[i].kind == TokenKind::kIdentifier &&
        names.count(tokens[i].text)) {
      return true;
    }
  }
  return false;
}

/// Entry points that start a parallel region: `ParallelFor(...)` and
/// `pool.Schedule(...)` / `pool->Submit(...)`. Returns the index of the call's
/// `(` or -1.
int ParallelCallOpenParen(const std::vector<Token>& tokens, int i) {
  const Token& t = tokens[i];
  if (t.kind != TokenKind::kIdentifier) return -1;
  const int n = static_cast<int>(tokens.size());
  if (t.text == "ParallelFor") {
    if (i + 1 < n && IsPunct(tokens[i + 1], "(")) return i + 1;
    return -1;
  }
  if (t.text == "Schedule" || t.text == "Submit") {
    if (i > 0 && (IsPunct(tokens[i - 1], ".") || IsPunct(tokens[i - 1], "->")) &&
        i + 1 < n && IsPunct(tokens[i + 1], "(")) {
      return i + 1;
    }
  }
  return -1;
}

}  // namespace

std::string Finding::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << check << "] " << message;
  return os.str();
}

SourceFile ParseSource(std::string path, const std::string& content) {
  SourceFile f;
  f.path = std::move(path);
  std::replace(f.path.begin(), f.path.end(), '\\', '/');
  f.lex = Lex(content);
  f.tree = BuildTree(f.lex.tokens);
  return f;
}

void CheckParallelRegions(const SourceFile& f, std::vector<Finding>* out) {
  const std::vector<Token>& tokens = f.lex.tokens;
  const TokenTree& tree = f.tree;
  const int n = static_cast<int>(tokens.size());
  const std::set<std::string> float_names = CollectFloatNames(tokens);
  const std::set<std::string> atomic_names = CollectAtomicNames(tokens, tree);

  for (int i = 0; i < n; ++i) {
    int open = ParallelCallOpenParen(tokens, i);
    if (open < 0) continue;
    int close = tree.Match(open);
    if (close < 0) continue;

    // Find every lambda in the argument list (usually exactly one).
    for (int j = open + 1; j < close; ++j) {
      if (!IsPunct(tokens[j], "[") || !IsLambdaIntro(tokens, j)) continue;
      std::optional<LambdaInfo> lambda = ParseLambdaAt(tokens, tree, j);
      if (!lambda) continue;

      // Index variables: this lambda's params plus any nested lambda's
      // params; locals declared in the body count as loop-private too.
      std::set<std::string> index_vars = lambda->params;
      std::vector<std::pair<int, int>> nested_intros;  // exclude their `=`
      for (int k = lambda->body_open + 1; k < lambda->body_close; ++k) {
        if (IsPunct(tokens[k], "[") && IsLambdaIntro(tokens, k)) {
          std::optional<LambdaInfo> nested = ParseLambdaAt(tokens, tree, k);
          if (nested) {
            index_vars.insert(nested->params.begin(), nested->params.end());
            nested_intros.push_back({nested->intro_open, nested->intro_close});
          }
        }
      }
      std::set<std::string> locals =
          CollectLocalDecls(tokens, lambda->body_open, lambda->body_close);
      std::set<std::string> ok_in_subscript = index_vars;
      ok_in_subscript.insert(locals.begin(), locals.end());

      for (int k = lambda->body_open + 1; k < lambda->body_close; ++k) {
        const Token& t = tokens[k];
        if (!IsAssignOp(t)) continue;
        // Skip operators inside nested lambda introducers ([x = init]).
        bool in_intro = false;
        for (const auto& range : nested_intros) {
          if (k > range.first && k < range.second) in_intro = true;
        }
        if (in_intro) continue;

        std::optional<WriteTarget> target =
            ResolveWriteTarget(tokens, tree, k, lambda->body_open + 1);
        if (!target || target->base.empty()) continue;
        const std::string& base = target->base;
        if (index_vars.count(base) || locals.count(base)) continue;
        if (lambda->val_captures.count(base)) continue;  // private copy
        if (atomic_names.count(base) &&
            !(IsPunct(t, "+=") || IsPunct(t, "-=")) ) {
          continue;  // atomic store / ++ counter: race-free
        }
        // Indexed by a loop-private variable into a per-index slot?
        bool indexed_ok = false;
        for (const auto& sub : target->index_groups) {
          if (SubscriptMentions(tokens, sub, ok_in_subscript)) {
            indexed_ok = true;
            break;
          }
        }
        if (indexed_ok) continue;

        bool is_float_accum =
            (IsPunct(t, "+=") || IsPunct(t, "-=")) && float_names.count(base);
        const char* check =
            is_float_accum ? "float-reduction-order" : "parallel-capture-race";
        const char* tag = is_float_accum ? "niid-float-reduction"
                                         : "niid-parallel-capture";
        if (f.lex.HasNolint(t.line, tag)) continue;
        Finding finding;
        finding.file = f.path;
        finding.line = t.line;
        finding.check = check;
        if (is_float_accum) {
          finding.message = "float accumulation into `" + base +
                            "` inside a parallel region is not into a "
                            "per-index slot; reduction order becomes "
                            "schedule-dependent — accumulate into a per-index "
                            "slot and reduce serially, or append // "
                            "NOLINT(niid-float-reduction)";
        } else {
          finding.message =
              "write to captured `" + base +
              "` inside a parallel region is not indexed by a loop "
              "variable — give each iteration its own slot, or append // "
              "NOLINT(niid-parallel-capture)";
        }
        out->push_back(std::move(finding));
      }
      j = lambda->body_close;  // don't re-enter this lambda
    }
    i = open;  // continue scanning inside the call for nested regions
  }
}

void CheckDeterministicIteration(const SourceFile& f,
                                 std::vector<Finding>* out) {
  if (f.path.find("src/fl/") == std::string::npos &&
      f.path.find("src/tensor/") == std::string::npos) {
    return;
  }
  const std::vector<Token>& tokens = f.lex.tokens;
  const TokenTree& tree = f.tree;
  const int n = static_cast<int>(tokens.size());
  const char* kTag = "niid-deterministic-iteration";

  // Pass 1: names declared with an unordered container type.
  std::set<std::string> unordered;
  for (int i = 0; i < n; ++i) {
    if (!IsIdent(tokens[i], "unordered_map") &&
        !IsIdent(tokens[i], "unordered_set") &&
        !IsIdent(tokens[i], "unordered_multimap") &&
        !IsIdent(tokens[i], "unordered_multiset")) {
      continue;
    }
    int j = i + 1;
    if (j < n && IsPunct(tokens[j], "<")) j = SkipTemplateArgs(tokens, tree, j);
    while (j < n && (IsPunct(tokens[j], "*") || IsPunct(tokens[j], "&") ||
                     IsIdent(tokens[j], "const"))) {
      ++j;
    }
    if (j < n && tokens[j].kind == TokenKind::kIdentifier) {
      unordered.insert(tokens[j].text);
    }
  }
  if (unordered.empty()) return;

  // Pass 2a: range-for whose range expression names an unordered container.
  for (int i = 0; i + 1 < n; ++i) {
    if (!IsIdent(tokens[i], "for") || !IsPunct(tokens[i + 1], "(")) continue;
    int close = tree.Match(i + 1);
    if (close < 0) continue;
    int colon = -1;
    for (int j = i + 2; j < close; ++j) {
      if (IsOpenBracket(tokens[j])) {
        int m = tree.Match(j);
        if (m < 0) break;
        j = m;
        continue;
      }
      if (IsPunct(tokens[j], ";")) break;  // classic for, not range-for
      if (IsPunct(tokens[j], ":")) {
        colon = j;
        break;
      }
    }
    if (colon < 0) continue;
    for (int j = colon + 1; j < close; ++j) {
      if (tokens[j].kind == TokenKind::kIdentifier &&
          unordered.count(tokens[j].text)) {
        if (!f.lex.HasNolint(tokens[j].line, kTag)) {
          out->push_back(
              {f.path, tokens[j].line, "deterministic-iteration",
               "range-for over unordered container `" + tokens[j].text +
                   "` — iteration order is implementation-defined, which "
                   "breaks fixed aggregation/reduction order; use std::map, "
                   "a sorted vector, or append // "
                   "NOLINT(niid-deterministic-iteration)"});
        }
        break;
      }
    }
  }

  // Pass 2b: explicit iterator loops. Only begin() variants start a
  // traversal; a lone `.end()` (the find() != end() lookup idiom) is
  // order-safe and stays legal.
  for (int i = 2; i < n; ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text != "begin" && t.text != "cbegin" && t.text != "rbegin") {
      continue;
    }
    if (!IsPunct(tokens[i - 1], ".") && !IsPunct(tokens[i - 1], "->")) continue;
    if (i + 1 >= n || !IsPunct(tokens[i + 1], "(")) continue;
    const Token& recv = tokens[i - 2];
    if (recv.kind == TokenKind::kIdentifier && unordered.count(recv.text)) {
      if (!f.lex.HasNolint(t.line, kTag)) {
        out->push_back(
            {f.path, t.line, "deterministic-iteration",
             "iterator traversal of unordered container `" + recv.text +
                 "` — iteration order is implementation-defined; use an "
                 "ordered container or append // "
                 "NOLINT(niid-deterministic-iteration)"});
      }
    }
  }
}

void CheckHotPathAllocation(const SourceFile& f, std::vector<Finding>* out) {
  const std::vector<Token>& tokens = f.lex.tokens;
  const TokenTree& tree = f.tree;
  const int n = static_cast<int>(tokens.size());
  const char* kTag = "niid-hot-alloc";

  for (const auto& [line, marks] : f.lex.marks) {
    if (!marks.hot_marker) continue;
    // First token strictly after the marker line.
    int i = 0;
    while (i < n && tokens[i].line <= line) ++i;
    // Find the function body `{`: skip parameter lists / member-init-list
    // parens; a `;` first means declaration only — nothing to check.
    int body_open = -1;
    while (i < n) {
      if (IsPunct(tokens[i], ";")) break;
      if (IsPunct(tokens[i], "(") || IsPunct(tokens[i], "[")) {
        int m = tree.Match(i);
        if (m < 0) break;
        i = m;
      } else if (IsPunct(tokens[i], "{")) {
        body_open = i;
        break;
      }
      ++i;
    }
    if (body_open < 0) continue;
    int body_close = tree.Match(body_open);
    if (body_close < 0) body_close = n - 1;

    for (int k = body_open + 1; k < body_close; ++k) {
      const Token& t = tokens[k];
      if (t.kind != TokenKind::kIdentifier) continue;
      std::string what;
      if (t.text == "new") {
        what = "`new` expression";
      } else if (t.text == "make_unique" || t.text == "make_shared") {
        // Require a call shape: followed by `<` or `(`.
        if (k + 1 < n &&
            (IsPunct(tokens[k + 1], "<") || IsPunct(tokens[k + 1], "("))) {
          what = "`std::" + t.text + "` call";
        }
      } else if (t.text == "resize" || t.text == "push_back" ||
                 t.text == "emplace_back") {
        // Member call on some object (case-sensitive: Tensor::Resize, which
        // the allocation-discipline tests sanction at setup time, is spelled
        // `Resize` and stays legal).
        if (k > 0 &&
            (IsPunct(tokens[k - 1], ".") || IsPunct(tokens[k - 1], "->")) &&
            k + 1 < n && IsPunct(tokens[k + 1], "(")) {
          what = "`." + t.text + "()` call";
        }
      }
      if (what.empty()) continue;
      if (f.lex.HasNolint(t.line, kTag)) continue;
      out->push_back(
          {f.path, t.line, "hot-path-allocation",
           what + " inside a // NIID_HOT function — hot paths must not "
                  "allocate (pre-size scratch in setup, reuse workspaces), "
                  "or append // NOLINT(niid-hot-alloc) for grow-only "
                  "first-touch scratch"});
    }
  }
}

void CollectStatusFunctions(const SourceFile& f, StatusRegistry* registry) {
  const std::vector<Token>& tokens = f.lex.tokens;
  const TokenTree& tree = f.tree;
  const int n = static_cast<int>(tokens.size());
  for (int i = 0; i < n; ++i) {
    const Token& t = tokens[i];
    int j = -1;
    bool bool_validator = false;
    if (IsIdent(t, "Status")) {
      j = i + 1;
    } else if (IsIdent(t, "StatusOr")) {
      j = i + 1;
      if (j < n && IsPunct(tokens[j], "<")) {
        j = SkipTemplateArgs(tokens, tree, j);
      }
    } else if (IsIdent(t, "bool")) {
      j = i + 1;
      bool_validator = true;
    } else {
      continue;
    }
    // Qualified-use guard: `Status::Ok(...)` is a call on Status itself, not
    // a declaration returning Status.
    if (j < n && IsPunct(tokens[j], "::")) continue;
    // Declarator chain: Identifier (:: Identifier)*, then `(`.
    int last_ident = -1;
    while (j + 1 < n && tokens[j].kind == TokenKind::kIdentifier &&
           IsPunct(tokens[j + 1], "::")) {
      j += 2;
    }
    if (j < n && tokens[j].kind == TokenKind::kIdentifier) {
      last_ident = j;
      ++j;
    }
    if (last_ident < 0 || j >= n || !IsPunct(tokens[j], "(")) continue;
    const std::string& name = tokens[last_ident].text;
    if (bool_validator) {
      if (name.rfind("Validate", 0) == 0 || name.rfind("Verify", 0) == 0 ||
          name.rfind("Check", 0) == 0) {
        registry->insert(name);
      }
    } else {
      registry->insert(name);
    }
  }
}

void CheckDiscardedStatus(const SourceFile& f, const StatusRegistry& registry,
                          std::vector<Finding>* out) {
  const std::vector<Token>& tokens = f.lex.tokens;
  const TokenTree& tree = f.tree;
  const int n = static_cast<int>(tokens.size());
  const char* kTag = "niid-discarded-status";

  // Statement starts: index 0, after `;` `{` `}`, after `else` / `do`, and
  // after the `)` closing an if/for/while/switch condition.
  std::vector<int> starts;
  starts.push_back(0);
  for (int i = 0; i + 1 < n; ++i) {
    const Token& t = tokens[i];
    if (IsPunct(t, ";") || IsPunct(t, "{") || IsPunct(t, "}") ||
        IsIdent(t, "else") || IsIdent(t, "do")) {
      starts.push_back(i + 1);
    } else if (IsPunct(t, ")")) {
      int open = tree.Match(i);
      if (open > 0) {
        const Token& kw = tokens[open - 1];
        if (IsIdent(kw, "if") || IsIdent(kw, "for") || IsIdent(kw, "while") ||
            IsIdent(kw, "switch")) {
          starts.push_back(i + 1);
        }
      }
    }
  }

  for (int s : starts) {
    if (s >= n) continue;
    int i = s;
    // `(void)` prefix: explicit intentional discard.
    if (IsPunct(tokens[i], "(") && i + 2 < n && IsIdent(tokens[i + 1], "void") &&
        IsPunct(tokens[i + 2], ")")) {
      continue;
    }
    if (tokens[i].kind != TokenKind::kIdentifier) continue;
    // Chain: Identifier ((::|.|->) Identifier)*
    int last_ident = i;
    ++i;
    while (i + 1 < n && IsChainSeparator(tokens[i]) &&
           tokens[i + 1].kind == TokenKind::kIdentifier) {
      last_ident = i + 1;
      i += 2;
    }
    if (i >= n || !IsPunct(tokens[i], "(")) continue;
    int close = tree.Match(i);
    if (close < 0 || close + 1 >= n) continue;
    if (!IsPunct(tokens[close + 1], ";")) continue;
    const std::string& name = tokens[last_ident].text;
    if (registry.count(name) == 0) continue;
    const Token& callt = tokens[last_ident];
    if (f.lex.HasNolint(callt.line, kTag)) continue;
    out->push_back(
        {f.path, callt.line, "discarded-status",
         "result of `" + name +
             "` (returns Status / a validation bool) is discarded — check "
             "it, cast to (void) for an intentional discard, or append // "
             "NOLINT(niid-discarded-status)"});
  }
}

}  // namespace niid::analyzer
