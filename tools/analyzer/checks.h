#ifndef NIID_TOOLS_ANALYZER_CHECKS_H_
#define NIID_TOOLS_ANALYZER_CHECKS_H_

#include <set>
#include <string>
#include <vector>

#include "analyzer/lexer.h"
#include "analyzer/token_tree.h"

namespace niid::analyzer {

struct Finding {
  std::string file;     // repo-relative path with '/' separators
  int line = 0;         // 1-based
  std::string check;    // e.g. "parallel-capture-race"
  std::string message;  // human-readable explanation

  std::string ToString() const;
};

/// One lexed + bracket-matched source file ready for the check passes.
struct SourceFile {
  std::string path;
  LexedSource lex;
  TokenTree tree;
};

SourceFile ParseSource(std::string path, const std::string& content);

/// Names of functions whose return value must not be discarded: functions
/// returning Status / StatusOr and bool-returning validators
/// (Validate*/Verify*/Check*). Built repo-wide so a call site in bench/ is
/// checked against a declaration in src/.
using StatusRegistry = std::set<std::string>;

void CollectStatusFunctions(const SourceFile& f, StatusRegistry* registry);

// -- The five checks. Each appends to `out`; escape hatch is a
//    NOLINT(<tag>) / NOLINTNEXTLINE(<tag>) comment with the tag named in the
//    finding message.

/// parallel-capture-race + float-reduction-order (one traversal finds the
/// parallel regions, then classifies each illegal write).
void CheckParallelRegions(const SourceFile& f, std::vector<Finding>* out);

/// deterministic-iteration: no iteration over unordered containers in
/// src/fl/ and src/tensor/ (path-scoped; other dirs pass untouched).
void CheckDeterministicIteration(const SourceFile& f,
                                 std::vector<Finding>* out);

/// hot-path-allocation: bodies of functions marked // NIID_HOT may not
/// allocate (new / make_unique / make_shared / resize / push_back /
/// emplace_back).
void CheckHotPathAllocation(const SourceFile& f, std::vector<Finding>* out);

/// discarded-status: expression-statements that call a registry function and
/// drop the result. `(void)foo();` is an accepted explicit discard.
void CheckDiscardedStatus(const SourceFile& f, const StatusRegistry& registry,
                          std::vector<Finding>* out);

}  // namespace niid::analyzer

#endif  // NIID_TOOLS_ANALYZER_CHECKS_H_
