#include "analyzer/lexer.h"

#include <array>
#include <cctype>
#include <cstddef>
#include <string_view>

namespace niid::analyzer {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character punctuators, longest first so greedy matching is correct.
// `>>` is intentionally split into two `>` tokens: the checks walk template
// argument lists by angle-bracket depth and `vector<vector<float>>` must
// close twice. No check cares about shift expressions.
constexpr std::array<std::string_view, 22> kPunctuators = {
    "<<=", "->*", "...", "::", "->", "++", "--", "+=", "-=", "*=", "/=",
    "%=",  "&=", "|=",  "^=", "==", "!=", "<=", ">=", "&&", "||", "<<",
};

/// Parses NOLINT / NOLINTNEXTLINE / NIID_HOT annotations out of one comment's
/// text and applies them to `marks`. `line` is the line the comment starts on.
void ApplyCommentMarks(const std::string& comment, int line,
                       std::map<int, LineMarks>* marks) {
  // A hot marker must lead the comment (`// NIID_HOT` or `// NIID_HOT: ...`)
  // so prose that merely mentions the marker does not declare a hot region.
  std::size_t lead = 0;
  while (lead < comment.size() &&
         (comment[lead] == '/' || comment[lead] == '*' ||
          std::isspace(static_cast<unsigned char>(comment[lead])))) {
    ++lead;
  }
  if (comment.compare(lead, 8, "NIID_HOT") == 0) {
    (*marks)[line].hot_marker = true;
  }
  std::size_t pos = 0;
  while ((pos = comment.find("NOLINT", pos)) != std::string::npos) {
    std::size_t after = pos + 6;
    int target = line;
    if (comment.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
      after = pos + 14;
      target = line + 1;
    }
    LineMarks& mark = (*marks)[target];
    if (after < comment.size() && comment[after] == '(') {
      std::size_t close = comment.find(')', after);
      if (close == std::string::npos) close = comment.size();
      std::string tag;
      for (std::size_t i = after + 1; i <= close; ++i) {
        char c = (i < close) ? comment[i] : ',';
        if (c == ',' ) {
          if (!tag.empty()) mark.nolint.insert(tag);
          tag.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
          tag.push_back(c);
        }
      }
      pos = close;
    } else {
      mark.nolint_all = true;
      pos = after;
    }
  }
}

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  LexedSource Run() {
    while (i_ < src_.size()) {
      char c = src_[i_];
      if (c == '\n') {
        ++line_;
        at_line_start_ = true;
        ++i_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        LexPreprocessor();
        continue;
      }
      at_line_start_ = false;
      if (c == 'R' && Peek(1) == '"') {
        LexRawString();
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdentifier();
        continue;
      }
      if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
        LexNumber();
        continue;
      }
      if (c == '"') {
        LexString();
        continue;
      }
      if (c == '\'') {
        LexChar();
        continue;
      }
      LexPunct();
    }
    return std::move(out_);
  }

 private:
  char Peek(std::size_t ahead) const {
    return (i_ + ahead < src_.size()) ? src_[i_ + ahead] : '\0';
  }

  void Emit(TokenKind kind, std::size_t begin, std::size_t end, int line) {
    out_.tokens.push_back({kind, src_.substr(begin, end - begin), line});
  }

  void LexLineComment() {
    std::size_t begin = i_;
    while (i_ < src_.size() && src_[i_] != '\n') ++i_;
    ApplyCommentMarks(src_.substr(begin, i_ - begin), line_, &out_.marks);
  }

  void LexBlockComment() {
    std::size_t begin = i_;
    int start_line = line_;
    i_ += 2;
    while (i_ < src_.size() && !(src_[i_] == '*' && Peek(1) == '/')) {
      if (src_[i_] == '\n') ++line_;
      ++i_;
    }
    if (i_ < src_.size()) i_ += 2;
    ApplyCommentMarks(src_.substr(begin, i_ - begin), start_line, &out_.marks);
  }

  /// Swallows a whole directive (honoring `\` continuations) into one token.
  /// A trailing // or /* comment on the directive line is lexed normally so
  /// NOLINT annotations on #define lines still register.
  void LexPreprocessor() {
    std::size_t begin = i_;
    int start_line = line_;
    while (i_ < src_.size()) {
      char c = src_[i_];
      if (c == '\n') {
        // Continuation if the last non-space char was a backslash.
        std::size_t back = i_;
        while (back > begin &&
               std::isspace(static_cast<unsigned char>(src_[back - 1])) &&
               src_[back - 1] != '\n') {
          --back;
        }
        if (back > begin && src_[back - 1] == '\\') {
          ++line_;
          ++i_;
          continue;
        }
        break;
      }
      if (c == '/' && (Peek(1) == '/' || Peek(1) == '*')) break;
      ++i_;
    }
    Emit(TokenKind::kPreproc, begin, i_, start_line);
    at_line_start_ = false;
  }

  void LexIdentifier() {
    std::size_t begin = i_;
    while (i_ < src_.size() && IsIdentChar(src_[i_])) ++i_;
    Emit(TokenKind::kIdentifier, begin, i_, line_);
  }

  void LexNumber() {
    std::size_t begin = i_;
    while (i_ < src_.size()) {
      char c = src_[i_];
      if (IsIdentChar(c) || c == '.' || c == '\'') {
        // Exponent signs: 1e+5, 0x1p-3.
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            (Peek(1) == '+' || Peek(1) == '-')) {
          i_ += 2;
          continue;
        }
        ++i_;
        continue;
      }
      break;
    }
    Emit(TokenKind::kNumber, begin, i_, line_);
  }

  void LexString() {
    std::size_t begin = i_;
    int start_line = line_;
    ++i_;
    while (i_ < src_.size() && src_[i_] != '"' && src_[i_] != '\n') {
      if (src_[i_] == '\\') ++i_;
      ++i_;
    }
    if (i_ < src_.size() && src_[i_] == '"') ++i_;
    Emit(TokenKind::kString, begin, i_, start_line);
  }

  void LexRawString() {
    std::size_t begin = i_;
    int start_line = line_;
    i_ += 2;  // R"
    std::string delim;
    while (i_ < src_.size() && src_[i_] != '(') delim.push_back(src_[i_++]);
    std::string closer = ")" + delim + "\"";
    std::size_t end = src_.find(closer, i_);
    if (end == std::string::npos) {
      i_ = src_.size();
    } else {
      for (std::size_t j = i_; j < end; ++j) {
        if (src_[j] == '\n') ++line_;
      }
      i_ = end + closer.size();
    }
    Emit(TokenKind::kString, begin, i_, start_line);
  }

  void LexChar() {
    std::size_t begin = i_;
    ++i_;
    while (i_ < src_.size() && src_[i_] != '\'' && src_[i_] != '\n') {
      if (src_[i_] == '\\') ++i_;
      ++i_;
    }
    if (i_ < src_.size() && src_[i_] == '\'') ++i_;
    Emit(TokenKind::kChar, begin, i_, line_);
  }

  void LexPunct() {
    for (std::string_view p : kPunctuators) {
      if (src_.compare(i_, p.size(), p) == 0) {
        Emit(TokenKind::kPunct, i_, i_ + p.size(), line_);
        i_ += p.size();
        return;
      }
    }
    Emit(TokenKind::kPunct, i_, i_ + 1, line_);
    ++i_;
  }

  const std::string& src_;
  std::size_t i_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  LexedSource out_;
};

}  // namespace

bool LexedSource::HasNolint(int line, const std::string& tag) const {
  auto it = marks.find(line);
  if (it == marks.end()) return false;
  return it->second.nolint_all || it->second.nolint.count(tag) > 0;
}

bool LexedSource::HasHotMarker(int line) const {
  auto it = marks.find(line);
  return it != marks.end() && it->second.hot_marker;
}

LexedSource Lex(const std::string& source) { return Lexer(source).Run(); }

}  // namespace niid::analyzer
