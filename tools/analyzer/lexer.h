#ifndef NIID_TOOLS_ANALYZER_LEXER_H_
#define NIID_TOOLS_ANALYZER_LEXER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace niid::analyzer {

/// Token classes the checks care about. Comments never become tokens; they
/// are folded into per-line `LineMarks` (NOLINT escapes, NIID_HOT markers)
/// at lex time. Preprocessor directives are swallowed into one kPreproc
/// token per directive (including line continuations) so their contents —
/// unbalanced braces in macro bodies, `<...>` in #include — cannot confuse
/// the token-tree matcher.
enum class TokenKind { kIdentifier, kNumber, kString, kChar, kPunct, kPreproc };

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 0;  // 1-based
};

/// Comment-derived annotations for one source line.
struct LineMarks {
  /// Tags named in `NOLINT(tag, ...)` on this line (a `NOLINTNEXTLINE(...)`
  /// on the previous line lands here too).
  std::set<std::string> nolint;
  /// Bare `NOLINT` with no tag list: suppresses every analyzer check.
  bool nolint_all = false;
  /// The line carries a `NIID_HOT` marker comment: the next function
  /// definition is a declared hot path (see CheckHotPathAllocation).
  bool hot_marker = false;
};

struct LexedSource {
  std::vector<Token> tokens;
  std::map<int, LineMarks> marks;  // keyed by 1-based line number

  /// True when `line` is covered by a bare NOLINT or a NOLINT naming `tag`.
  bool HasNolint(int line, const std::string& tag) const;
  bool HasHotMarker(int line) const;
};

/// Tokenizes C++ source. Never fails: malformed input degrades to best-effort
/// tokens (an unterminated literal runs to end of line), matching the
/// analyzer's advisory role — it must not crash on code the compiler rejects.
LexedSource Lex(const std::string& source);

}  // namespace niid::analyzer

#endif  // NIID_TOOLS_ANALYZER_LEXER_H_
