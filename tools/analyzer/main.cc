// niid-analyzer CLI: runs the five repo invariant checks over the source
// tree (see DESIGN.md §11). Exit 0 = clean, 1 = findings, 2 = usage/IO error.
//
//   niid_analyzer --root <repo-root> [--out <findings-file>]

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analyzer/analyzer.h"

namespace {

int Usage() {
  std::cerr << "usage: niid_analyzer --root <repo-root> [--out <file>]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.c_str() + prefix.size();
      if (arg == flag && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value("--root")) {
      root = v;
    } else if (const char* v = value("--out")) {
      out_path = v;
    } else {
      return Usage();
    }
  }
  if (root.empty()) return Usage();

  std::string error;
  std::vector<niid::analyzer::Finding> findings =
      niid::analyzer::AnalyzeRepo(root, &error);
  if (!error.empty()) {
    std::cerr << "niid-analyzer: " << error << "\n";
    return 2;
  }

  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::cerr << "niid-analyzer: cannot write " << out_path << "\n";
      return 2;
    }
  }
  for (const auto& finding : findings) {
    std::string line = finding.ToString();
    std::cout << line << "\n";
    if (file.is_open()) file << line << "\n";
  }
  if (findings.empty()) {
    std::cout << "niid-analyzer: OK (0 findings)\n";
    if (file.is_open()) file << "OK\n";
    return 0;
  }
  std::cout << "niid-analyzer: " << findings.size() << " finding(s)\n";
  return 1;
}
