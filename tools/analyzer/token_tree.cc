#include "analyzer/token_tree.h"

namespace niid::analyzer {

bool IsOpenBracket(const Token& t) {
  return t.kind == TokenKind::kPunct &&
         (t.text == "(" || t.text == "[" || t.text == "{");
}

bool IsCloseBracket(const Token& t) {
  return t.kind == TokenKind::kPunct &&
         (t.text == ")" || t.text == "]" || t.text == "}");
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

namespace {

char Opener(const std::string& close) {
  if (close == ")") return '(';
  if (close == "]") return '[';
  return '{';
}

}  // namespace

TokenTree BuildTree(const std::vector<Token>& tokens) {
  TokenTree tree;
  tree.match.assign(tokens.size(), -1);
  std::vector<int> stack;
  for (int i = 0; i < static_cast<int>(tokens.size()); ++i) {
    const Token& t = tokens[i];
    if (IsOpenBracket(t)) {
      stack.push_back(i);
    } else if (IsCloseBracket(t)) {
      // Pop until the matching opener kind; drop mismatched openers so one
      // stray bracket cannot corrupt the rest of the file.
      char want = Opener(t.text);
      while (!stack.empty() && tokens[stack.back()].text[0] != want) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        tree.match[stack.back()] = i;
        tree.match[i] = stack.back();
        stack.pop_back();
      }
    }
  }
  return tree;
}

int SkipTemplateArgs(const std::vector<Token>& tokens, const TokenTree& tree,
                     int i) {
  const int n = static_cast<int>(tokens.size());
  if (i >= n || !IsPunct(tokens[i], "<")) return i + 1;
  int depth = 0;
  int j = i;
  while (j < n) {
    const Token& t = tokens[j];
    if (IsPunct(t, "<")) {
      ++depth;
    } else if (IsPunct(t, ">")) {
      --depth;
      if (depth == 0) return j + 1;
    } else if (IsPunct(t, "(") || IsPunct(t, "[")) {
      int m = tree.Match(j);
      if (m < 0) return i + 1;
      j = m;
    } else if (IsPunct(t, ";") || IsPunct(t, "{")) {
      // A `<` that was really a comparison: bail out.
      return i + 1;
    }
    ++j;
  }
  return i + 1;
}

}  // namespace niid::analyzer
