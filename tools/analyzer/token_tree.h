#ifndef NIID_TOOLS_ANALYZER_TOKEN_TREE_H_
#define NIID_TOOLS_ANALYZER_TOKEN_TREE_H_

#include <string>
#include <vector>

#include "analyzer/lexer.h"

namespace niid::analyzer {

/// Implicit token tree over the flat token stream: for every bracket token
/// (one of `()[]{}`) `match[i]` holds the index of its partner, so checks can
/// jump over whole sub-expressions in O(1) instead of re-counting depth.
/// Unbalanced brackets (possible in macro-heavy code after the preprocessor
/// directives were swallowed) leave match[i] == -1; checks treat that as
/// "skip to end" rather than failing.
struct TokenTree {
  std::vector<int> match;

  /// Partner index of the bracket at `i`, or -1 when unmatched / not a
  /// bracket.
  int Match(int i) const {
    return (i >= 0 && i < static_cast<int>(match.size())) ? match[i] : -1;
  }
};

TokenTree BuildTree(const std::vector<Token>& tokens);

bool IsOpenBracket(const Token& t);
bool IsCloseBracket(const Token& t);
bool IsPunct(const Token& t, const char* text);
bool IsIdent(const Token& t, const char* text);

/// With tokens[i] == `<` opening a template argument list, returns the index
/// just past the matching `>` (angle depth counting; `(`/`[` groups inside are
/// jumped via the tree). Returns i + 1 when no balanced close is found.
int SkipTemplateArgs(const std::vector<Token>& tokens, const TokenTree& tree,
                     int i);

}  // namespace niid::analyzer

#endif  // NIID_TOOLS_ANALYZER_TOKEN_TREE_H_
