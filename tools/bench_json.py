#!/usr/bin/env python3
"""Run the GEMM micro-benchmarks and emit a machine-readable BENCH_gemm.json.

Usage:
    tools/bench_json.py [--bench-binary build/bench/bench_micro_engine]
                        [--output BENCH_gemm.json] [--min-time 0.1]

Invokes bench_micro_engine with --benchmark_format=json over the GEMM
benchmarks (BM_Matmul*), converts each entry's items_per_second counter —
which those benchmarks define as floating-point operations per second — into
GFLOP/s, and derives the two headline speedup ratios the engine is judged by:

    single_thread_speedup   BM_Matmul/256      vs BM_MatmulNaive/256
    pool4_speedup           BM_MatmulPool/256/4 vs BM_Matmul/256

The output JSON carries the raw benchmark entries alongside the summary so
regressions can be bisected to a specific shape.

Exit status: 0 on success, 1 when the binary is missing or produces no
matching benchmarks.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

FILTER = "BM_Matmul"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench-binary",
        default="build/bench/bench_micro_engine",
        help="path to the bench_micro_engine executable",
    )
    parser.add_argument(
        "--output", default="BENCH_gemm.json", help="where to write the JSON"
    )
    parser.add_argument(
        "--min-time",
        default="0.1",
        help="--benchmark_min_time per benchmark, in seconds (plain double; "
        "the pinned google-benchmark predates the '0.1s' suffix syntax)",
    )
    args = parser.parse_args()

    binary = pathlib.Path(args.bench_binary)
    if not binary.exists():
        print(f"bench binary not found: {binary}", file=sys.stderr)
        return 1

    result = subprocess.run(
        [
            str(binary),
            f"--benchmark_filter={FILTER}",
            f"--benchmark_min_time={args.min_time}",
            "--benchmark_format=json",
        ],
        capture_output=True,
        text=True,
        check=True,
    )
    report = json.loads(result.stdout)

    entries = {}
    for bench in report.get("benchmarks", []):
        # Pool benchmarks run UseRealTime, which suffixes the name.
        name = bench["name"].removesuffix("/real_time")
        entry = {
            "time_ns": bench.get("real_time"),
            "cpu_time_ns": bench.get("cpu_time"),
            "iterations": bench.get("iterations"),
        }
        if "items_per_second" in bench:
            entry["gflops"] = bench["items_per_second"] / 1e9
        entries[name] = entry
    if not entries:
        print("no GEMM benchmarks matched", file=sys.stderr)
        return 1

    def ratio(numerator: str, denominator: str):
        a = entries.get(numerator, {}).get("gflops")
        b = entries.get(denominator, {}).get("gflops")
        return a / b if a and b else None

    summary = {
        "single_thread_speedup": ratio("BM_Matmul/256", "BM_MatmulNaive/256"),
        "pool4_speedup": ratio("BM_MatmulPool/256/4", "BM_Matmul/256"),
        "naive_256_gflops": entries.get("BM_MatmulNaive/256", {}).get("gflops"),
        "engine_256_gflops": entries.get("BM_Matmul/256", {}).get("gflops"),
        "engine_256_pool4_gflops": entries.get("BM_MatmulPool/256/4", {}).get(
            "gflops"
        ),
    }

    output = {
        "context": report.get("context", {}),
        "summary": summary,
        "benchmarks": entries,
    }
    pathlib.Path(args.output).write_text(json.dumps(output, indent=2) + "\n")
    print(f"wrote {args.output}")
    for key, value in summary.items():
        if value is not None:
            print(f"  {key}: {value:.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
