#!/usr/bin/env python3
"""Run a micro-benchmark suite and emit a machine-readable BENCH_*.json.

Usage:
    tools/bench_json.py [--suite gemm|step|round|faults|compress|scale|
                         scenarios]
                        [--bench-binary build/bench/bench_micro_engine]
                        [--scale-binary build/bench/bench_scale]
                        [--output BENCH_<suite>.json] [--min-time 0.1]
                        [--threads N] [--compare OLD.json]
                        [--allow-non-release]

Invokes bench_micro_engine with --benchmark_format=json over the suite's
benchmarks and derives the headline numbers the engine is judged by.

Provenance: the binary stamps `niid_build_type`/`niid_assertions` into the
benchmark context (the Debian benchmark harness misreports its own
library_build_type as "debug" even in Release builds, so that field is NOT
trusted). Runs from a non-Release binary, or one predating the stamp, are
refused with exit status 1 unless --allow-non-release is given — in which
case the output is loudly tagged with "non_release_build": true.

--threads N records the worker-pool width the runner can actually exercise.
With N >= 2 the gemm summary gains `pool_speedup` (2-thread pool vs serial
at 256^3) and the step summary gains `backward_pool_speedup`
(BM_StepBackwardPool/2 vs BM_StepBackward); on a 1-CPU runner those ratios
are oversubscription artifacts, so they are only emitted when requested.

--compare OLD.json re-diffs the freshly measured suite against a previous
output of the same suite, printing per-benchmark time deltas. For the step
and gemm suites any benchmark slowing down by more than 10% fails the run
(exit status 2) so CI can gate on it.

Suite "gemm" (BM_Matmul*): converts each entry's items_per_second counter —
which those benchmarks define as floating-point operations per second — into
GFLOP/s and reports the two headline speedup ratios:

    single_thread_speedup   BM_Matmul/256      vs BM_MatmulNaive/256
    pool4_speedup           BM_MatmulPool/256/4 vs BM_Matmul/256

Suite "step" (BM_Step* + BM_SimpleCnnStep): the zero-allocation training-step
family, reporting full-step latency/throughput per model and the per-stage
breakdown of the simple-cnn/CIFAR-10 step. BM_SimpleCnnStep (forward+backward,
batch 64x1x28x28) predates the kernel layer, so the JSON embeds its measured
pre-kernel-layer baseline and the resulting speedup ratio.

Suite "round" (BM_Round* + BM_Eval*): the worker-workspace simulation engine —
federated-round latency at 10 and 100 parties, pooled global-evaluation
latency, and the peak_rss_mb / live_model_replicas counters that back the
O(threads) model-memory claim.

Suite "faults" (BM_Fault*): accuracy under deterministic fault injection.
Each benchmark trains a quantity-skewed 12-party federation to completion
under a straggle or drop schedule and exports the final global accuracy as a
counter. The summary reports per-algorithm accuracy at each fault level plus
the degradation (fault-free accuracy minus accuracy at the heaviest fault
level), and the headline boolean fednova_degrades_less_than_fedavg — the
tau-normalization claim from the paper's device-heterogeneity discussion.

Suite "compress" (BM_Compress*): bytes-on-wire vs accuracy for the update
codec layer. BM_CompressTrain trains the fault suite's label-skewed
federation under each codec (error feedback on) and exports bytes/round,
the measured and code-only compression ratios, and the replica-averaged
final accuracy; BM_CompressEncode/Decode time the codec kernels in
isolation. The summary tables each codec against the uncompressed baseline
and evaluates the acceptance checks — int8 reaches its 4x design ratio,
int4 and top-k clear 8x on the wire, and none of the three costs more than
half an accuracy point (rand-k's gap is reported but not gated: shipping
5% of coordinates chosen blindly is the known-lossy point of that codec).

Suite "scale" (bench_scale, one subprocess per arm): the sparse party
engine's party-count sweep. Runs a dense 100-party arm (the memory envelope)
plus sparse arms at 1e2..1e6 parties with ~100 sampled parties per round,
recording parties-vs-peak-RSS and parties-vs-wall curves. Per-arm process
isolation is what makes getrusage's ru_maxrss a per-arm number. The summary
evaluates the scalability acceptance checks: rss_is_sublinear_in_parties
(1e4x more parties may not even double peak RSS), the 1M-party run
completing with RSS within 2x the dense envelope, and the sharded
reduction's bitwise identity to a serial single-shard replay at 1M parties.
Under --compare the scale suite is regression-gated at 25% wall time
(end-to-end training arms are noisier than microbenchmarks).

Suite "scenarios" (BM_Scenario, from the bench_scenarios binary): the
robustness leaderboard. Each benchmark trains the fault suite's label-skewed
12-party federation under one (algorithm, aggregation rule, scenario) cell —
scenarios: clean, signflip20 (a fixed 20% adversary subset uploading
5x-amplified sign-flipped deltas), and churn (label drift plus a diurnal
availability trace) — and exports the replica-averaged final accuracy. The
summary tables accuracy per cell and evaluates the acceptance checks:
median_beats_mean_under_signflip, and best_robust_recovers_half_of_attack
(some robust rule recovers at least half the accuracy plain FedAvg loses to
the sign-flip attack).

The output JSON carries the raw benchmark entries alongside the summary so
regressions can be bisected to a specific shape.

Exit status: 0 on success, 1 when the binary is missing or produces no
matching benchmarks.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

SUITE_FILTER = {
    "gemm": "BM_Matmul",
    "step": "^BM_Step|^BM_SimpleCnnStep",
    "round": "^BM_Round|^BM_Eval",
    "faults": "^BM_Fault",
    "compress": "^BM_Compress",
    "scenarios": "^BM_Scenario",
}

# Suites served by a dedicated binary instead of bench_micro_engine; applied
# only when --bench-binary is left at its default.
SUITE_BINARY = {
    "scenarios": "build/bench/bench_scenarios",
}

# Suites whose benchmarks are pure latency measurements of the engine: a
# --compare regression in these is a build break, not noise from federated
# accuracy dynamics. The scale suite is gated too, but with a looser
# threshold: its arms are short end-to-end training runs, not steady-state
# microbenchmarks.
COMPARE_GATED_SUITES = ("gemm", "step", "scale")
COMPARE_REGRESSION_THRESHOLD = 0.10
SCALE_COMPARE_THRESHOLD = 0.25

# Scale suite: party counts swept by the sparse engine (one subprocess per
# arm so getrusage's process-wide ru_maxrss is a genuinely per-arm number),
# plus a dense 100-party arm that defines the memory envelope the 1M-party
# run is held to.
SCALE_PARTIES = [100, 1_000, 10_000, 100_000, 1_000_000]
SCALE_DENSE_ENVELOPE_PARTIES = 100
SCALE_RSS_ENVELOPE_FACTOR = 2.0

# BM_SimpleCnnStep measured at the commit immediately before the kernel-layer
# PR, same container (1 CPU, Release, native GEMM): the denominator of
# step_speedup_vs_pre_kernel_layer.
PRE_KERNEL_LAYER_BASELINE = {
    "benchmark": "BM_SimpleCnnStep",
    "time_ms": 22.64,
    "samples_per_second": 2970.0,
}

# BM_StepBackward (SimpleCnn/CIFAR, batch 64) measured at the PR 6 commit on
# the same container from a Release build: the denominator of
# backward_speedup_vs_pr6 (the backward-pass-engine PR's headline ratio).
PR6_BACKWARD_BASELINE = {
    "benchmark": "BM_StepBackward",
    "time_ms": 35.34,
}


def gemm_summary(entries: dict) -> dict:
    def ratio(numerator: str, denominator: str):
        a = entries.get(numerator, {}).get("gflops")
        b = entries.get(denominator, {}).get("gflops")
        return a / b if a and b else None

    return {
        "single_thread_speedup": ratio("BM_Matmul/256", "BM_MatmulNaive/256"),
        "pool4_speedup": ratio("BM_MatmulPool/256/4", "BM_Matmul/256"),
        "naive_256_gflops": entries.get("BM_MatmulNaive/256", {}).get("gflops"),
        "engine_256_gflops": entries.get("BM_Matmul/256", {}).get("gflops"),
        "engine_256_pool4_gflops": entries.get("BM_MatmulPool/256/4", {}).get(
            "gflops"
        ),
    }


def step_summary(entries: dict) -> dict:
    def ms(name: str):
        t = entries.get(name, {}).get("time_ns")
        return t / 1e6 if t is not None else None

    legacy_ms = ms("BM_SimpleCnnStep")
    baseline_ms = PRE_KERNEL_LAYER_BASELINE["time_ms"]
    backward_ms = ms("BM_StepBackward")
    summary = {
        "simple_cnn_mnist_fwd_bwd_ms": legacy_ms,
        "pre_kernel_layer_baseline": PRE_KERNEL_LAYER_BASELINE,
        "step_speedup_vs_pre_kernel_layer": (
            baseline_ms / legacy_ms if legacy_ms else None
        ),
        "pr6_backward_baseline": PR6_BACKWARD_BASELINE,
        "backward_speedup_vs_pr6": (
            PR6_BACKWARD_BASELINE["time_ms"] / backward_ms
            if backward_ms
            else None
        ),
        "simple_cnn_cifar_step_ms": ms("BM_StepFullSimpleCnn"),
        "tabular_mlp_step_ms": ms("BM_StepFullTabularMlp"),
        "resnet_step_ms": ms("BM_StepFullResNet"),
        "breakdown_simple_cnn_cifar_ms": {
            "gather": ms("BM_StepGather"),
            "zero_grads": ms("BM_StepZeroGrads"),
            "forward": ms("BM_StepForward"),
            "loss": ms("BM_StepLoss"),
            "backward": ms("BM_StepBackward"),
            "optimizer": ms("BM_StepOptimizer"),
            "delta": ms("BM_StepDelta"),
        },
    }
    for name in ("BM_StepFullSimpleCnn", "BM_StepFullTabularMlp",
                 "BM_StepFullResNet", "BM_SimpleCnnStep"):
        items = entries.get(name, {}).get("items_per_second")
        if items is not None:
            key = name.removeprefix("BM_") + "_samples_per_second"
            summary[key] = items
    return summary


def round_summary(entries: dict) -> dict:
    def ms(name: str):
        t = entries.get(name, {}).get("time_ns")
        return t / 1e6 if t is not None else None

    def counter(name: str, key: str):
        return entries.get(name, {}).get(key)

    replicas_100p2t = counter("BM_RoundFedAvg/100/2", "live_model_replicas")
    return {
        "round_10_parties_ms": ms("BM_RoundFedAvg/10/1"),
        "round_100_parties_fraction01_ms": ms("BM_RoundFedAvg/100/1"),
        "round_100_parties_fraction01_2threads_ms": ms("BM_RoundFedAvg/100/2"),
        "eval_global_ms": ms("BM_EvalGlobal/1"),
        "eval_global_2threads_ms": ms("BM_EvalGlobal/2"),
        "peak_rss_mb": counter("BM_EvalGlobal/2", "peak_rss_mb"),
        # The scalability claim: a 100-party run on 2 threads keeps exactly
        # 2 model replicas alive (not 100).
        "live_model_replicas_100_parties_2_threads": replicas_100p2t,
        "replicas_are_o_threads": (
            replicas_100p2t == 2.0 if replicas_100p2t is not None else None
        ),
    }


def faults_summary(entries: dict) -> dict:
    algorithms = {"0": "fedavg", "1": "fednova"}

    def matrix(family: str) -> dict:
        # BM_FaultStraggle/<algo>/<pct> -> {algo: {pct: final_accuracy}}
        table: dict = {name: {} for name in algorithms.values()}
        for name, entry in entries.items():
            parts = name.split("/")
            if parts[0] != family or len(parts) != 3:
                continue
            algo = algorithms.get(parts[1])
            if algo is None or "final_accuracy" not in entry:
                continue
            table[algo][parts[2]] = entry["final_accuracy"]
        return table

    def degradation(table: dict, algo: str):
        levels = table.get(algo, {})
        if not levels:
            return None
        pcts = sorted(levels, key=int)
        return levels[pcts[0]] - levels[pcts[-1]]

    straggle = matrix("BM_FaultStraggle")
    drop = matrix("BM_FaultDrop")
    fedavg_loss = degradation(straggle, "fedavg")
    fednova_loss = degradation(straggle, "fednova")
    return {
        "straggle_accuracy_by_pct": straggle,
        "drop_accuracy_by_pct": drop,
        "fedavg_straggle_degradation": fedavg_loss,
        "fednova_straggle_degradation": fednova_loss,
        "fednova_degrades_less_than_fedavg": (
            fednova_loss < fedavg_loss
            if fedavg_loss is not None and fednova_loss is not None
            else None
        ),
    }


def compress_summary(entries: dict) -> dict:
    # BM_CompressTrain/<i> indexes kCompressCases in bench_micro_engine.cpp.
    codecs = {"0": "none", "1": "int8", "2": "int4", "3": "topk", "4": "randk"}

    def train(index: str) -> dict:
        return entries.get(f"BM_CompressTrain/{index}", {})

    baseline = train("0").get("final_accuracy")
    by_codec: dict = {}
    for index, name in codecs.items():
        entry = train(index)
        if not entry:
            continue
        accuracy = entry.get("final_accuracy")
        by_codec[name] = {
            "bytes_per_round": entry.get("bytes_per_round"),
            "measured_ratio": entry.get("measured_ratio"),
            "code_only_ratio": entry.get("code_only_ratio"),
            "final_accuracy": accuracy,
            # Positive = the codec lost accuracy vs the float32 baseline.
            "accuracy_gap_vs_uncompressed": (
                baseline - accuracy
                if baseline is not None and accuracy is not None
                else None
            ),
        }

    def gap_ok(name: str):
        gap = by_codec.get(name, {}).get("accuracy_gap_vs_uncompressed")
        return gap <= 0.005 if gap is not None else None

    def ratio_ok(name: str, key: str, floor: float):
        ratio = by_codec.get(name, {}).get(key)
        return ratio >= floor if ratio is not None else None

    def coords_per_second(family: str) -> dict:
        return {
            codecs[i]: entries[f"{family}/{i}"]["items_per_second"]
            for i in ("1", "2", "3", "4")
            if "items_per_second" in entries.get(f"{family}/{i}", {})
        }

    return {
        "uncompressed_accuracy": baseline,
        "by_codec": by_codec,
        "encode_coords_per_second": coords_per_second("BM_CompressEncode"),
        "decode_coords_per_second": coords_per_second("BM_CompressDecode"),
        "checks": {
            # The design ratio gates the fixed-width codecs (per-segment
            # scale metadata keeps the measured ratio asymptotically below
            # it on small models); the wire gates the sparsifiers.
            "int8_reaches_4x": ratio_ok("int8", "code_only_ratio", 4.0),
            "int4_reaches_8x": ratio_ok("int4", "code_only_ratio", 8.0),
            "topk_reaches_8x_on_wire": ratio_ok("topk", "measured_ratio", 8.0),
            "int8_gap_within_half_point": gap_ok("int8"),
            "int4_gap_within_half_point": gap_ok("int4"),
            "topk_gap_within_half_point": gap_ok("topk"),
        },
    }


def scenarios_summary(entries: dict) -> dict:
    # BM_Scenario/<algo>/<rule>/<scenario> indexes the tables in
    # bench/bench_scenarios.cpp.
    algorithms = {"0": "fedavg", "1": "fedprox", "2": "scaffold",
                  "3": "fednova"}
    rules = {"0": "mean", "1": "median", "2": "trimmed", "3": "clipped"}
    scenarios = {"0": "clean", "1": "signflip20", "2": "churn"}

    leaderboard: dict = {}
    for name, entry in entries.items():
        parts = name.split("/")
        if parts[0] != "BM_Scenario" or len(parts) != 4:
            continue
        algo = algorithms.get(parts[1])
        rule = rules.get(parts[2])
        scenario = scenarios.get(parts[3])
        if None in (algo, rule, scenario) or "final_accuracy" not in entry:
            continue
        leaderboard.setdefault(algo, {}).setdefault(rule, {})[scenario] = (
            entry["final_accuracy"]
        )

    def accuracy(algo: str, rule: str, scenario: str):
        return leaderboard.get(algo, {}).get(rule, {}).get(scenario)

    clean = accuracy("fedavg", "mean", "clean")
    attacked = accuracy("fedavg", "mean", "signflip20")
    attack_damage = (
        clean - attacked if clean is not None and attacked is not None
        else None
    )
    # How much of the attack's damage each robust rule recovers, as a
    # fraction of what plain FedAvg lost (1.0 = back to the clean baseline).
    recovered = {}
    for rule in ("median", "trimmed", "clipped"):
        robust = accuracy("fedavg", rule, "signflip20")
        if robust is not None and attack_damage:
            recovered[rule] = (robust - attacked) / attack_damage
    best_rule = max(recovered, key=recovered.get) if recovered else None
    median_attacked = accuracy("fedavg", "median", "signflip20")
    return {
        "leaderboard": leaderboard,
        "fedavg_clean_accuracy": clean,
        "fedavg_signflip20_accuracy": attacked,
        "signflip20_attack_damage": attack_damage,
        "recovered_fraction_by_rule": recovered,
        "best_robust_rule": best_rule,
        "checks": {
            "signflip_attack_actually_hurts": (
                attack_damage > 0.0 if attack_damage is not None else None
            ),
            "median_beats_mean_under_signflip": (
                median_attacked > attacked
                if median_attacked is not None and attacked is not None
                else None
            ),
            "best_robust_recovers_half_of_attack": (
                recovered[best_rule] >= 0.5 if best_rule else None
            ),
        },
    }


def run_scale_suite(args) -> dict:
    """Runs bench_scale once per arm and parses its RESULT lines.

    Unlike the other suites this does not go through bench_micro_engine:
    each arm is a fresh subprocess of build/bench/bench_scale, so the
    peak_rss_mb of one arm never contaminates the next.
    """
    binary = pathlib.Path(args.scale_binary)
    if not binary.exists():
        raise FileNotFoundError(f"scale binary not found: {binary}")

    def run_arm(parties: int, mode: str, identity_check: bool) -> dict:
        cmd = [
            str(binary),
            f"--parties={parties}",
            f"--mode={mode}",
            f"--rounds={args.scale_rounds}",
            f"--threads={args.threads}",
        ]
        if identity_check:
            cmd.append("--identity_check")
        result = subprocess.run(cmd, capture_output=True, text=True, check=True)
        for line in result.stdout.splitlines():
            if not line.startswith("RESULT "):
                continue
            fields = dict(kv.split("=", 1) for kv in line.split()[1:])
            entry = {
                "parties": int(fields["parties"]),
                "mode": fields["mode"],
                "rounds": int(fields["rounds"]),
                "sampled_per_round": int(fields["sampled_per_round"]),
                "wall_s": float(fields["wall_s"]),
                "peak_rss_mb": float(fields["peak_rss_mb"]),
                "final_loss": float(fields["final_loss"]),
                # Seconds expressed in ns so compare_against diffs arms the
                # same way it diffs microbenchmark entries.
                "time_ns": float(fields["wall_s"]) * 1e9,
            }
            if "identity_ok" in fields:
                entry["identity_ok"] = fields["identity_ok"] == "1"
            return entry
        raise RuntimeError(f"no RESULT line from {' '.join(cmd)}")

    entries = {}
    entries[f"scale/dense/{SCALE_DENSE_ENVELOPE_PARTIES}"] = run_arm(
        SCALE_DENSE_ENVELOPE_PARTIES, "dense", identity_check=False
    )
    for parties in SCALE_PARTIES:
        # Identity replay doubles an arm's cost; running it on the largest
        # arm checks the shards-vs-serial contract where it matters most.
        entries[f"scale/sparse/{parties}"] = run_arm(
            parties, "sparse", identity_check=parties == max(SCALE_PARTIES)
        )
    return entries


def scale_summary(entries: dict) -> dict:
    sparse = {
        p: entries[f"scale/sparse/{p}"]
        for p in SCALE_PARTIES
        if f"scale/sparse/{p}" in entries
    }
    dense = entries.get(f"scale/dense/{SCALE_DENSE_ENVELOPE_PARTIES}", {})
    rss_curve = {str(p): e["peak_rss_mb"] for p, e in sparse.items()}
    wall_curve = {str(p): e["wall_s"] for p, e in sparse.items()}

    smallest, largest = (min(sparse), max(sparse)) if sparse else (None, None)
    # Sublinearity: 3+ decades more parties may not even double peak RSS.
    # (A linear engine grows RSS ~1000x over this sweep; the sparse engine's
    # residency is O(sampled parties per round), constant across the sweep.)
    rss_is_sublinear = (
        sparse[largest]["peak_rss_mb"]
        <= 2.0 * sparse[smallest]["peak_rss_mb"]
        if sparse and largest > smallest
        else None
    )
    million = sparse.get(1_000_000)
    envelope_mb = dense.get("peak_rss_mb")
    identity_arms = [e for e in sparse.values() if "identity_ok" in e]
    return {
        "parties_vs_peak_rss_mb": rss_curve,
        "parties_vs_wall_s": wall_curve,
        "dense_100_party_envelope_mb": envelope_mb,
        "million_party_peak_rss_mb": (
            million["peak_rss_mb"] if million else None
        ),
        "million_party_wall_s": million["wall_s"] if million else None,
        "checks": {
            "rss_is_sublinear_in_parties": rss_is_sublinear,
            "million_party_run_completed": million is not None,
            "million_party_rss_within_2x_dense_envelope": (
                million["peak_rss_mb"]
                <= SCALE_RSS_ENVELOPE_FACTOR * envelope_mb
                if million and envelope_mb
                else None
            ),
            "sharded_identity_ok": (
                all(e["identity_ok"] for e in identity_arms)
                if identity_arms
                else None
            ),
        },
    }


SUITE_SUMMARY = {
    "gemm": gemm_summary,
    "step": step_summary,
    "round": round_summary,
    "faults": faults_summary,
    "compress": compress_summary,
    "scale": scale_summary,
    "scenarios": scenarios_summary,
}


def provenance_problems(context: dict) -> list[str]:
    """Reasons this run's numbers are not trustworthy Release measurements."""
    problems = []
    build_type = context.get("niid_build_type")
    if build_type is None:
        problems.append(
            "binary predates the niid_build_type stamp (rebuild from the "
            "Release preset)"
        )
    elif build_type.lower() not in ("release", "relwithdebinfo"):
        problems.append(f"niid_build_type is {build_type!r}, not Release")
    if context.get("niid_assertions") == "on":
        problems.append("assertions are compiled in (NDEBUG unset)")
    return problems


def pool_scaling_summary(suite: str, entries: dict, threads: int) -> dict:
    """Pool-vs-serial ratios, only meaningful on runners with >= 2 CPUs."""
    def ratio(pooled: str, serial: str):
        a = entries.get(serial, {}).get("time_ns")
        b = entries.get(pooled, {}).get("time_ns")
        return a / b if a and b else None

    extra = {"bench_threads": threads}
    if suite == "gemm":
        extra["pool_speedup"] = ratio("BM_MatmulPool/256/2", "BM_Matmul/256")
    elif suite == "step":
        extra["backward_pool_speedup"] = ratio(
            f"BM_StepBackwardPool/{threads}", "BM_StepBackward"
        )
    return extra


def compare_against(old_path: str, suite: str, entries: dict) -> int:
    """Prints per-benchmark deltas vs a previous run; returns the number of
    >10% time regressions (only counted for the compare-gated suites)."""
    old = json.loads(pathlib.Path(old_path).read_text())
    if old.get("suite") != suite:
        print(
            f"--compare: {old_path} holds suite {old.get('suite')!r}, "
            f"not {suite!r}",
            file=sys.stderr,
        )
        return 1
    old_entries = old.get("benchmarks", {})
    threshold = (
        SCALE_COMPARE_THRESHOLD
        if suite == "scale"
        else COMPARE_REGRESSION_THRESHOLD
    )
    regressions = 0
    print(f"comparison vs {old_path}:")
    for name in sorted(entries):
        new_t = entries[name].get("time_ns")
        old_t = old_entries.get(name, {}).get("time_ns")
        if not new_t or not old_t:
            print(f"  {name}: no baseline entry, skipped")
            continue
        delta = (new_t - old_t) / old_t
        marker = ""
        if delta > threshold:
            if suite in COMPARE_GATED_SUITES:
                regressions += 1
                marker = "  <-- REGRESSION"
            else:
                marker = "  (slower; suite not gated)"
        print(
            f"  {name}: {old_t / 1e6:.3f} ms -> {new_t / 1e6:.3f} ms "
            f"({delta:+.1%}){marker}"
        )
    for name in sorted(set(old_entries) - set(entries)):
        print(f"  {name}: present in baseline only")
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--suite",
        choices=sorted(SUITE_SUMMARY),
        default="gemm",
        help="which benchmark family to run",
    )
    parser.add_argument(
        "--scale-binary",
        default="build/bench/bench_scale",
        help="path to the bench_scale executable (scale suite only)",
    )
    parser.add_argument(
        "--scale-rounds",
        type=int,
        default=2,
        help="communication rounds per scale-suite arm",
    )
    parser.add_argument(
        "--bench-binary",
        default=None,
        help="path to the benchmark executable (default: "
        "build/bench/bench_micro_engine, or the suite's dedicated binary)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the JSON (default BENCH_<suite>.json)",
    )
    parser.add_argument(
        "--min-time",
        default="0.1",
        help="--benchmark_min_time per benchmark, in seconds (plain double; "
        "the pinned google-benchmark predates the '0.1s' suffix syntax)",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=1,
        help="worker-pool width the runner genuinely provides; >= 2 adds the "
        "pool-vs-serial scaling ratios to the summary",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="OLD.json",
        help="diff this run against a previous output of the same suite; "
        ">10%% time regressions in the step/gemm suites exit nonzero",
    )
    parser.add_argument(
        "--allow-non-release",
        action="store_true",
        help="tag instead of refusing when the bench binary is not a "
        "Release build",
    )
    args = parser.parse_args()
    output_path = args.output or f"BENCH_{args.suite}.json"

    if args.suite == "scale":
        # The scale suite drives bench_scale subprocess-per-arm instead of
        # bench_micro_engine; its provenance is the CMake build type of that
        # binary (same tree, same preset as the rest of the bench dir).
        try:
            entries = run_scale_suite(args)
        except (FileNotFoundError, RuntimeError) as error:
            print(str(error), file=sys.stderr)
            return 1
        summary = scale_summary(entries)
        output = {"suite": "scale", "summary": summary, "benchmarks": entries}
        pathlib.Path(output_path).write_text(
            json.dumps(output, indent=2) + "\n"
        )
        print(f"wrote {output_path}")
        for key, value in summary["checks"].items():
            print(f"  {key}: {value}")
        if args.compare:
            regressions = compare_against(args.compare, "scale", entries)
            if regressions:
                print(
                    f"{regressions} arm(s) regressed "
                    f">{SCALE_COMPARE_THRESHOLD:.0%}",
                    file=sys.stderr,
                )
                return 2
        return 0

    binary = pathlib.Path(
        args.bench_binary
        or SUITE_BINARY.get(args.suite, "build/bench/bench_micro_engine")
    )
    if not binary.exists():
        print(f"bench binary not found: {binary}", file=sys.stderr)
        return 1

    result = subprocess.run(
        [
            str(binary),
            f"--benchmark_filter={SUITE_FILTER[args.suite]}",
            f"--benchmark_min_time={args.min_time}",
            "--benchmark_format=json",
        ],
        capture_output=True,
        text=True,
        check=True,
    )
    report = json.loads(result.stdout)

    context = report.get("context", {})
    problems = provenance_problems(context)
    if problems:
        for problem in problems:
            print(f"bench provenance: {problem}", file=sys.stderr)
        if not args.allow_non_release:
            print(
                "refusing to write non-Release numbers "
                "(--allow-non-release overrides)",
                file=sys.stderr,
            )
            return 1
        print(
            "WARNING: tagging output as non_release_build — these numbers "
            "are NOT comparable to the committed baselines",
            file=sys.stderr,
        )

    entries = {}
    for bench in report.get("benchmarks", []):
        # Pool benchmarks run UseRealTime, which suffixes the name.
        name = bench["name"].removesuffix("/real_time")
        entry = {
            "time_ns": bench.get("real_time"),
            "cpu_time_ns": bench.get("cpu_time"),
            "iterations": bench.get("iterations"),
        }
        if "items_per_second" in bench:
            entry["items_per_second"] = bench["items_per_second"]
            if args.suite == "gemm":
                entry["gflops"] = bench["items_per_second"] / 1e9
        for key in (
            "peak_rss_mb",
            "live_model_replicas",
            "final_accuracy",
            "bytes_per_round",
            "bytes_per_round_uncompressed",
            "measured_ratio",
            "code_only_ratio",
            "payload_bytes",
        ):
            if key in bench:
                entry[key] = bench[key]
        entries[name] = entry
    if not entries:
        print(f"no {args.suite} benchmarks matched", file=sys.stderr)
        return 1

    summary = SUITE_SUMMARY[args.suite](entries)
    if args.threads >= 2:
        summary.update(pool_scaling_summary(args.suite, entries, args.threads))

    output = {
        "suite": args.suite,
        "context": context,
        "summary": summary,
        "benchmarks": entries,
    }
    if problems:
        output["non_release_build"] = True
        output["provenance_problems"] = problems
    pathlib.Path(output_path).write_text(json.dumps(output, indent=2) + "\n")
    print(f"wrote {output_path}")
    for key, value in summary.items():
        if isinstance(value, float):
            print(f"  {key}: {value:.2f}")

    if args.compare:
        regressions = compare_against(args.compare, args.suite, entries)
        if regressions:
            print(
                f"{regressions} benchmark(s) regressed "
                f">{COMPARE_REGRESSION_THRESHOLD:.0%}",
                file=sys.stderr,
            )
            return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
