#!/usr/bin/env python3
"""Repo-specific lint for niidbench — invariants generic tools can't express.

Checks (all hard failures):
  header-guard     every header under src/, tests/, bench/ carries either
                   `#pragma once` or an include guard whose macro is derived
                   from its path (src/util/check.h -> NIID_UTIL_CHECK_H_).
  determinism      rand()/srand()/std::random_device/std::mt19937 and friends
                   appear nowhere outside src/util/rng.* — every stochastic
                   draw must flow through the seeded niid::Rng so experiments
                   stay bit-reproducible.
  shuffle          std::shuffle / std::random_shuffle are banned unless the
                   engine argument on the same line is a niid::Rng adapter
                   (mentions `Rng`); permutations go through Rng::Shuffle.
  wall-clock-seed  time(nullptr) / time(NULL) / time(0) and the
                   now().time_since_epoch() chrono-seed idiom are banned
                   everywhere: a seed derived from the wall clock silently
                   destroys run-to-run reproducibility. Chrono clocks used
                   for *timing* (duration subtraction in bench/) are fine.
  naked-new        no `new` expressions outside src/util/rng-free smart-pointer
                   wrappers; allocate via std::make_unique/containers. Escape
                   hatch for the rare intentional case:
                   append `// NOLINT(niid-naked-new)` to the line.
  fl-validation    every translation unit in src/fl/ (the public federated
                   API surface) validates inputs with at least one NIID_CHECK.

Optional:
  --format         run `clang-format --dry-run -Werror` over all C++ sources
                   (check only, never rewrites). Skipped with a notice when
                   clang-format is not installed.

Exit status: 0 when clean, 1 when any check fails.
"""

from __future__ import annotations

import argparse
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CODE_DIRS = ("src", "tests", "bench", "examples")
CPP_SUFFIXES = {".cc", ".cpp", ".h", ".hpp"}

# Files allowed to reference the banned randomness primitives.
RNG_ALLOWLIST = {Path("src/util/rng.h"), Path("src/util/rng.cc")}

DETERMINISM_RE = re.compile(
    r"\b(?:srand|rand)\s*\(|\brandom_device\b|\bmt19937(?:_64)?\b"
    r"|\bdefault_random_engine\b|\bminstd_rand0?\b"
)
NAKED_NEW_RE = re.compile(r"(?:^|[^\w.])new\s+(?:\(|[A-Za-z_:<])")
NAKED_NEW_ESCAPE = "NOLINT(niid-naked-new)"

# std::shuffle / std::random_shuffle with anything but a niid::Rng adapter.
SHUFFLE_RE = re.compile(r"\bstd\s*::\s*(?:random_)?shuffle\s*\(")
SHUFFLE_ENGINE_OK_RE = re.compile(r"\bRng|\brng\b")

# Wall-clock seeds: time(nullptr)-style calls and the chrono seed idiom
# now().time_since_epoch().  (Chrono *timing* — duration subtraction — does
# not involve time_since_epoch and stays legal.)
WALL_CLOCK_SEED_RE = re.compile(
    r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)|\btime_since_epoch\s*\("
)


def cpp_files() -> list[Path]:
    files: list[Path] = []
    for top in CODE_DIRS:
        root = REPO_ROOT / top
        if not root.is_dir():
            continue
        files.extend(
            p for p in sorted(root.rglob("*")) if p.suffix in CPP_SUFFIXES
        )
    return files


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line breaks
    so reported line numbers stay accurate."""
    out: list[str] = []
    i, n = 0, len(text)
    mode = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if ch == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                # Raw string literal R"delim( ... )delim" — the body may hold
                # quotes and banned tokens; blank it wholesale (keeping line
                # breaks) instead of tracking quote state character-wise.
                if out and out[-1] == "R":
                    close = text.find("(", i)
                    if close != -1:
                        delim = ")" + text[i + 1 : close] + '"'
                        end = text.find(delim, close)
                        end = (end + len(delim)) if end != -1 else n
                        out.append(
                            "".join(
                                "\n" if c == "\n" else " "
                                for c in text[i:end]
                            )
                        )
                        i = end
                        continue
                mode = "string"
                out.append(" ")
                i += 1
                continue
            if ch == "'":
                mode = "char"
                out.append(" ")
                i += 1
                continue
            out.append(ch)
        elif mode == "line_comment":
            if ch == "\n":
                mode = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif mode == "block_comment":
            if ch == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if ch == "\n" else " ")
        else:  # string or char literal
            quote = '"' if mode == "string" else "'"
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == quote:
                mode = "code"
            out.append(" " if ch != "\n" else "\n")
        i += 1
    return "".join(out)


def expected_guard(rel: Path) -> str:
    """src/util/check.h -> NIID_UTIL_CHECK_H_ ; tests/grad_check.h ->
    NIID_TESTS_GRAD_CHECK_H_ (the src/ prefix is dropped, others kept)."""
    parts = list(rel.parts)
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    return "NIID_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_"


def check_header_guards(files: list[Path], errors: list[str]) -> None:
    for path in files:
        if path.suffix not in {".h", ".hpp"}:
            continue
        rel = path.relative_to(REPO_ROOT)
        text = path.read_text(encoding="utf-8")
        if "#pragma once" in text:
            continue
        guard = expected_guard(rel)
        has_ifndef = re.search(
            rf"^#ifndef\s+{re.escape(guard)}\s*$", text, re.MULTILINE
        )
        has_define = re.search(
            rf"^#define\s+{re.escape(guard)}\s*$", text, re.MULTILINE
        )
        if not (has_ifndef and has_define):
            errors.append(
                f"{rel}: missing `#pragma once` or include guard `{guard}`"
            )


def check_determinism(files: list[Path], errors: list[str]) -> None:
    for path in files:
        rel = path.relative_to(REPO_ROOT)
        if rel in RNG_ALLOWLIST:
            continue
        code = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        for lineno, line in enumerate(code.splitlines(), start=1):
            match = DETERMINISM_RE.search(line)
            if match:
                errors.append(
                    f"{rel}:{lineno}: banned randomness primitive "
                    f"`{match.group(0).strip()}` — draw from niid::Rng "
                    "(src/util/rng.h) so runs stay seed-reproducible"
                )


def check_shuffle(files: list[Path], errors: list[str]) -> None:
    for path in files:
        rel = path.relative_to(REPO_ROOT)
        if rel in RNG_ALLOWLIST:
            continue
        code = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        for lineno, line in enumerate(code.splitlines(), start=1):
            if not SHUFFLE_RE.search(line):
                continue
            if SHUFFLE_ENGINE_OK_RE.search(line):
                continue
            errors.append(
                f"{rel}:{lineno}: std::shuffle with a non-niid::Rng engine — "
                "permute via niid::Rng::Shuffle (src/util/rng.h) so the "
                "order is seed-reproducible"
            )


def check_wall_clock_seed(files: list[Path], errors: list[str]) -> None:
    for path in files:
        rel = path.relative_to(REPO_ROOT)
        if rel in RNG_ALLOWLIST:
            continue
        code = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        for lineno, line in enumerate(code.splitlines(), start=1):
            match = WALL_CLOCK_SEED_RE.search(line)
            if match:
                errors.append(
                    f"{rel}:{lineno}: wall-clock seed source "
                    f"`{match.group(0).strip()}` — seeds must be explicit "
                    "constants or flags, never derived from the clock"
                )


def check_naked_new(files: list[Path], errors: list[str]) -> None:
    for path in files:
        rel = path.relative_to(REPO_ROOT)
        raw_lines = path.read_text(encoding="utf-8").splitlines()
        code = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        for lineno, line in enumerate(code.splitlines(), start=1):
            if not NAKED_NEW_RE.search(line):
                continue
            if NAKED_NEW_ESCAPE in raw_lines[lineno - 1]:
                continue
            errors.append(
                f"{rel}:{lineno}: naked `new` — use std::make_unique / a "
                f"container, or append `// {NAKED_NEW_ESCAPE}` if ownership "
                "is intentionally manual"
            )


def check_fl_validation(errors: list[str]) -> None:
    fl_dir = REPO_ROOT / "src" / "fl"
    for path in sorted(fl_dir.glob("*.cc")):
        text = path.read_text(encoding="utf-8")
        if "NIID_CHECK" not in text:
            errors.append(
                f"{path.relative_to(REPO_ROOT)}: public fl/ translation unit "
                "has no NIID_CHECK input validation"
            )


def check_format(files: list[Path], errors: list[str]) -> bool:
    """Returns False when clang-format is unavailable (check skipped)."""
    clang_format = shutil.which("clang-format")
    if clang_format is None:
        print("lint: clang-format not found; --format check skipped")
        return False
    result = subprocess.run(
        [clang_format, "--dry-run", "-Werror", "--style=file"]
        + [str(p) for p in files],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=False,
    )
    if result.returncode != 0:
        tail = "\n".join(result.stderr.strip().splitlines()[:40])
        errors.append(f"clang-format --dry-run reported violations:\n{tail}")
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--format",
        action="store_true",
        help="also verify formatting with clang-format --dry-run -Werror",
    )
    args = parser.parse_args()

    files = cpp_files()
    errors: list[str] = []
    check_header_guards(files, errors)
    check_determinism(files, errors)
    check_shuffle(files, errors)
    check_wall_clock_seed(files, errors)
    check_naked_new(files, errors)
    check_fl_validation(errors)
    if args.format:
        check_format(files, errors)

    if errors:
        for error in errors:
            print(f"lint: {error}")
        print(f"lint: {len(errors)} violation(s) in {len(files)} files")
        return 1
    print(f"lint: OK ({len(files)} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
