#!/usr/bin/env python3
"""Self-test for tools/lint.py — every check must fire on a bad fixture and
stay silent on its good twin. Run directly or via ctest (LintSelfTest).

Fixtures are written to a temporary directory and lint.REPO_ROOT is pointed
at it for the duration of each test, so the real repo is never touched.
"""

from __future__ import annotations

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import lint  # noqa: E402


class LintFixtureTest(unittest.TestCase):
    def setUp(self) -> None:
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)
        self._saved_root = lint.REPO_ROOT
        lint.REPO_ROOT = self.root

    def tearDown(self) -> None:
        lint.REPO_ROOT = self._saved_root
        self._tmp.cleanup()

    def write(self, rel: str, content: str) -> Path:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")
        return path

    def run_check(self, check, *paths: Path) -> list[str]:
        errors: list[str] = []
        check(list(paths), errors)
        return errors

    # ------------------------------------------------------- header-guard

    def test_header_guard_flags_missing_guard(self) -> None:
        bad = self.write("src/util/thing.h", "int x;\n")
        errors = self.run_check(lint.check_header_guards, bad)
        self.assertEqual(len(errors), 1)
        self.assertIn("NIID_UTIL_THING_H_", errors[0])

    def test_header_guard_accepts_pragma_once(self) -> None:
        good = self.write("src/util/thing.h", "#pragma once\nint x;\n")
        self.assertEqual(self.run_check(lint.check_header_guards, good), [])

    def test_header_guard_accepts_derived_macro(self) -> None:
        good = self.write(
            "src/util/thing.h",
            "#ifndef NIID_UTIL_THING_H_\n#define NIID_UTIL_THING_H_\n"
            "int x;\n#endif\n",
        )
        self.assertEqual(self.run_check(lint.check_header_guards, good), [])

    # -------------------------------------------------------- determinism

    def test_determinism_flags_mt19937(self) -> None:
        bad = self.write(
            "src/fl/bad.cc", "#include <random>\nstd::mt19937 gen(42);\n"
        )
        errors = self.run_check(lint.check_determinism, bad)
        self.assertEqual(len(errors), 1)
        self.assertIn("src/fl/bad.cc:2", errors[0])
        self.assertIn("mt19937", errors[0])

    def test_determinism_flags_random_device(self) -> None:
        bad = self.write("src/fl/bad.cc", "std::random_device rd;\n")
        self.assertEqual(len(self.run_check(lint.check_determinism, bad)), 1)

    def test_determinism_allows_rng_implementation(self) -> None:
        allowed = self.write("src/util/rng.cc", "// mt19937 is fine here\n"
                                                "static int mt19937 = 0;\n")
        self.assertEqual(self.run_check(lint.check_determinism, allowed), [])

    def test_determinism_ignores_comments_and_strings(self) -> None:
        good = self.write(
            "src/fl/good.cc",
            '// unlike rand(), niid::Rng is seeded\n'
            'const char* kMsg = "do not call srand(7)";\n',
        )
        self.assertEqual(self.run_check(lint.check_determinism, good), [])

    # ------------------------------------------------------------ shuffle

    def test_shuffle_flags_std_shuffle_with_foreign_engine(self) -> None:
        bad = self.write(
            "src/data/bad.cc", "std::shuffle(v.begin(), v.end(), gen);\n"
        )
        errors = self.run_check(lint.check_shuffle, bad)
        self.assertEqual(len(errors), 1)
        self.assertIn("non-niid::Rng engine", errors[0])

    def test_shuffle_flags_random_shuffle(self) -> None:
        bad = self.write(
            "src/data/bad.cc", "std::random_shuffle(v.begin(), v.end());\n"
        )
        self.assertEqual(len(self.run_check(lint.check_shuffle, bad)), 1)

    def test_shuffle_accepts_rng_adapter_engine(self) -> None:
        good = self.write(
            "src/data/good.cc",
            "std::shuffle(v.begin(), v.end(), RngAdapter(rng));"
            "  // Rng-backed\n",
        )
        # The adapter mentions Rng in the engine argument on the same line.
        self.assertEqual(self.run_check(lint.check_shuffle, good), [])

    def test_shuffle_accepts_rng_member_shuffle(self) -> None:
        good = self.write("src/data/good.cc", "rng.Shuffle(order);\n")
        self.assertEqual(self.run_check(lint.check_shuffle, good), [])

    # ---------------------------------------------------- wall-clock-seed

    def test_wall_clock_flags_time_nullptr(self) -> None:
        bad = self.write("src/fl/bad.cc", "Rng rng(time(nullptr));\n")
        errors = self.run_check(lint.check_wall_clock_seed, bad)
        self.assertEqual(len(errors), 1)
        self.assertIn("wall-clock seed", errors[0])

    def test_wall_clock_flags_time_null_and_zero(self) -> None:
        bad = self.write(
            "src/fl/bad.cc", "auto a = time(NULL);\nauto b = time(0);\n"
        )
        self.assertEqual(
            len(self.run_check(lint.check_wall_clock_seed, bad)), 2
        )

    def test_wall_clock_flags_chrono_seed_idiom(self) -> None:
        bad = self.write(
            "src/fl/bad.cc",
            "auto seed = std::chrono::steady_clock::now()"
            ".time_since_epoch().count();\n",
        )
        self.assertEqual(
            len(self.run_check(lint.check_wall_clock_seed, bad)), 1
        )

    def test_wall_clock_accepts_chrono_timing(self) -> None:
        good = self.write(
            "bench/good.cpp",
            "const auto start = std::chrono::steady_clock::now();\n"
            "const double secs = std::chrono::duration<double>(\n"
            "    std::chrono::steady_clock::now() - start).count();\n",
        )
        self.assertEqual(self.run_check(lint.check_wall_clock_seed, good), [])

    def test_wall_clock_ignores_comment_mentions(self) -> None:
        good = self.write(
            "src/fl/good.cc", "// never seed from time(nullptr)\nint x;\n"
        )
        self.assertEqual(self.run_check(lint.check_wall_clock_seed, good), [])

    # ---------------------------------------------------------- naked-new

    def test_naked_new_flags_new_expression(self) -> None:
        bad = self.write("src/fl/bad.cc", "int* p = new int(3);\n")
        errors = self.run_check(lint.check_naked_new, bad)
        self.assertEqual(len(errors), 1)
        self.assertIn("naked `new`", errors[0])

    def test_naked_new_honors_escape_comment(self) -> None:
        good = self.write(
            "src/fl/good.cc",
            "int* p = new int(3);  // NOLINT(niid-naked-new)\n",
        )
        self.assertEqual(self.run_check(lint.check_naked_new, good), [])

    def test_naked_new_ignores_make_unique(self) -> None:
        good = self.write(
            "src/fl/good.cc", "auto p = std::make_unique<int>(3);\n"
        )
        self.assertEqual(self.run_check(lint.check_naked_new, good), [])

    # ------------------------------------------------------ fl-validation

    def test_fl_validation_requires_niid_check(self) -> None:
        self.write("src/fl/empty.cc", "void NoValidation() {}\n")
        errors: list[str] = []
        lint.check_fl_validation(errors)
        self.assertEqual(len(errors), 1)
        self.assertIn("src/fl/empty.cc", errors[0])

    def test_fl_validation_accepts_checked_unit(self) -> None:
        self.write(
            "src/fl/checked.cc",
            "void Validated(int n) { NIID_CHECK(n > 0); }\n",
        )
        errors: list[str] = []
        lint.check_fl_validation(errors)
        self.assertEqual(errors, [])

    # -------------------------------------------------- strip infrastructure

    def test_strip_blanks_raw_string_bodies(self) -> None:
        text = ('const char* fixture = R"cc(\n'
                "int* p = new int(3);\n"
                'std::mt19937 gen("inner quote);\n'
                ')cc";\n'
                "int after;\n")
        stripped = lint.strip_comments_and_strings(text)
        self.assertEqual(text.count("\n"), stripped.count("\n"))
        self.assertNotIn("new int", stripped)
        self.assertNotIn("mt19937", stripped)
        self.assertIn("int after;", stripped)

    def test_strip_preserves_line_numbers(self) -> None:
        text = "int a; // comment\n/* block\nspanning */ int b;\n"
        stripped = lint.strip_comments_and_strings(text)
        self.assertEqual(text.count("\n"), stripped.count("\n"))
        self.assertNotIn("comment", stripped)
        self.assertNotIn("block", stripped)
        self.assertIn("int b;", stripped)


class LintRealRepoTest(unittest.TestCase):
    """The actual repository must be lint-clean (mirrors the `lint` target)."""

    def test_repo_is_clean(self) -> None:
        files = lint.cpp_files()
        errors: list[str] = []
        lint.check_header_guards(files, errors)
        lint.check_determinism(files, errors)
        lint.check_shuffle(files, errors)
        lint.check_wall_clock_seed(files, errors)
        lint.check_naked_new(files, errors)
        lint.check_fl_validation(errors)
        self.assertEqual(errors, [], "\n".join(errors))


if __name__ == "__main__":
    unittest.main()
